"""Durability battery: WAL framing, crash recovery, atomic writes, seal races.

Proves the contract of :mod:`repro.serving.durability`:

* the write-ahead log's framing survives round trips, heals a torn tail by
  truncation, and refuses (``WALCorruptionError``) mid-file corruption;
* a :class:`DurableSequenceStore` killed at **every WAL append boundary**
  recovers byte-identically (``snapshot()`` equality) to the state after the
  operation that owned the final surviving record — the hypothesis property
  test drives a random op tape through every truncation point;
* on-disk writers (:func:`repro.core.serialization.atomic_write`) leave the
  previous file intact when the write dies mid-flight;
* :meth:`ShardedUserSequenceStore.remove_shard` no longer races in-flight
  ``record`` calls: the seal + retry protocol loses no writes (regression
  hammer for the pre-PR-8 window where a record could land on a detached
  shard).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.serialization import atomic_write, atomic_write_text
from repro.serving.cache import ShardedUserSequenceStore, UserSequenceStore
from repro.serving.durability import (
    WAL_OPS,
    DurableSequenceStore,
    WALCorruptionError,
    WriteAheadLog,
    inspect_durability,
    read_wal,
)
from repro.serving.faults import FaultInjector

MAX_SEQ_LEN = 6

SETTINGS = settings(max_examples=20, deadline=None)


def make_record(seq: int, op: str = "record", user: int = 1) -> dict:
    assert op in WAL_OPS
    return {"seq": seq, "op": op, "user": user, "fp": [1, 2, 3],
            "stamp": 0.0, "events": [1, 2, 3]}


# --------------------------------------------------------------------------- #
# WAL framing
# --------------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=2)
        for seq in range(1, 6):
            wal.append(make_record(seq))
        wal.sync()
        scan = read_wal(tmp_path / "wal.jsonl")
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5]
        assert scan.last_seq == 5 and not scan.torn
        wal.close()

    def test_log_owns_sequencing(self, tmp_path):
        """A caller-supplied 'seq' can never override the assigned one."""
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        assert wal.append({"op": "record", "seq": 999}) == 1
        assert wal.append({"op": "record", "seq": 1}) == 2
        wal.sync()
        scan = read_wal(tmp_path / "wal.jsonl")
        assert [r["seq"] for r in scan.records] == [1, 2]
        wal.close()

    def test_non_increasing_seq_on_disk_is_corruption(self, tmp_path):
        """Seq going backwards mid-file (valid records follow) is corruption,
        not a crash tail, and must refuse rather than silently replay."""
        path = tmp_path / "wal.jsonl"
        from repro.serving.durability import _encode_line

        path.write_bytes(_encode_line({"seq": 2, "op": "record"})
                         + _encode_line({"seq": 1, "op": "record"})
                         + _encode_line({"seq": 3, "op": "record"}))
        with pytest.raises(WALCorruptionError):
            read_wal(path)

    def test_torn_tail_is_healed_at_every_byte(self, tmp_path):
        """A partial final line (any cut point) is detected and dropped."""
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in (1, 2, 3):
            wal.append(make_record(seq))
        wal.close()
        data = path.read_bytes()
        last_line_start = data[:-1].rfind(b"\n") + 1
        for cut in range(last_line_start + 1, len(data)):
            torn_path = tmp_path / "torn.jsonl"
            torn_path.write_bytes(data[:cut])
            scan = read_wal(torn_path)
            assert scan.torn
            assert [r["seq"] for r in scan.records] == [1, 2]
            assert scan.valid_bytes == last_line_start

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in (1, 2, 3):
            wal.append(make_record(seq))
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside record 2: a valid record follows, so this is
        # corruption, not a crash tail.
        bad = lines[1][:5] + b"X" + lines[1][6:]
        path.write_bytes(lines[0] + bad + lines[2])
        with pytest.raises(WALCorruptionError):
            read_wal(path)

    def test_compaction_drops_checkpointed_prefix(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in range(1, 8):
            wal.append(make_record(seq))
        wal.compact(5)
        scan = read_wal(path)
        assert [r["seq"] for r in scan.records] == [6, 7]
        wal.append(make_record(8))
        wal.close()
        assert [r["seq"] for r in read_wal(path).records] == [6, 7, 8]

    def test_fsync_batching_counters(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=3)
        for seq in range(1, 7):
            wal.append(make_record(seq))
        status = wal.status()
        assert status["appends"] == 6
        assert status["fsyncs"] == 2          # at appends 3 and 6
        assert status["synced_seq"] == 6 and status["lag"] == 0
        wal.append(make_record(7))
        assert wal.status()["lag"] == 1
        wal.close()

    def test_torn_write_injection_is_fail_stop(self, tmp_path):
        injector = FaultInjector(seed=3)
        injector.arm("wal.torn", kind="torn", after=1, times=1)
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, injector=injector)
        wal.append(make_record(1))
        with pytest.raises(Exception):
            wal.append(make_record(2))
        assert wal.status()["broken"]
        with pytest.raises(Exception):
            wal.append(make_record(3))   # broken log refuses further appends
        wal.close()
        scan = read_wal(path)            # the torn tail heals on read
        assert scan.torn and [r["seq"] for r in scan.records] == [1]


# --------------------------------------------------------------------------- #
# Crash recovery: every append boundary (the hypothesis property test)
# --------------------------------------------------------------------------- #
OPS = st.lists(
    st.tuples(
        st.sampled_from(["record", "append", "encode", "invalidate", "clear"]),
        st.integers(min_value=0, max_value=5),                    # user id
        st.lists(st.integers(min_value=0, max_value=9),           # events
                 min_size=1, max_size=4),
    ),
    min_size=1, max_size=12,
)


def apply_op(store, op) -> None:
    kind, user, events = op
    if kind == "record":
        store.record(user, events)
    elif kind == "append":
        store.append_event(user, events[0])
    elif kind == "encode":
        store.encode(user, events)
    elif kind == "invalidate":
        store.invalidate(user)
    else:
        store.clear()


def truncate_wal_copy(source: Path, dest: Path, keep_records: int) -> None:
    """Copy a durability directory, keeping only the first WAL records."""
    shutil.copytree(source, dest)
    wal_path = dest / "wal.jsonl"
    lines = wal_path.read_bytes().splitlines(keepends=True)
    wal_path.write_bytes(b"".join(lines[:keep_records]))


class TestCrashRecovery:
    @SETTINGS
    @given(ops=OPS, shards=st.sampled_from([1, 3]))
    def test_replay_is_byte_identical_at_every_append_boundary(
            self, tmp_path_factory, ops, shards):
        """Kill the store after every WAL append; replay must reconverge.

        For a crash at an op boundary the recovered ``snapshot()`` must be
        byte-identical to the live pre-crash one.  For a crash *inside* a
        multi-record op (put+evict, sharded clear) write-ahead semantics
        promise prefix-consistency instead: replaying the surviving prefix
        and then the op's remaining records lands exactly on the post-op
        state — no record is lost, none applies twice.
        """
        base = tmp_path_factory.mktemp("wal")
        live = base / "live"
        store = DurableSequenceStore(live, MAX_SEQ_LEN, capacity=3,
                                     shards=shards, fsync_every=1)
        boundaries = []   # (WAL high-water mark, pre-crash snapshot) per op
        for op in ops:
            apply_op(store, op)
            boundaries.append((store.wal_status()["last_seq"],
                               store.snapshot()))
        store._wal.sync()
        all_records = read_wal(live / "wal.jsonl").records

        expected_by_record = {}   # record count -> (op last_seq, op snapshot)
        previous = 0
        for last_seq, snap in boundaries:
            for record_count in range(previous + 1, last_seq + 1):
                expected_by_record[record_count] = (last_seq, snap)
            previous = max(previous, last_seq)

        for record_count, (op_last, expected) in expected_by_record.items():
            crashed = base / f"crash{record_count}"
            truncate_wal_copy(live, crashed, record_count)
            recovered = DurableSequenceStore(crashed, MAX_SEQ_LEN, capacity=3,
                                             shards=shards, fsync_every=1)
            assert recovered.recovery.replayed == record_count
            for record in all_records:   # complete the op that was cut
                if record_count < int(record["seq"]) <= op_last:
                    recovered._store.apply_journal(record)
            assert recovered.snapshot() == expected, (
                f"replay after {record_count} records diverged")
            recovered.close()
        store.close()

    def test_recovery_after_checkpoint_and_more_traffic(self, tmp_path):
        store = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=8)
        for user in range(5):
            store.record(user, [user, user + 1])
        store.checkpoint()
        store.record(7, [1, 2, 3])
        store.invalidate(0)
        expected = store.snapshot()
        store._wal.sync()

        recovered = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=8)
        assert recovered.snapshot() == expected
        assert recovered.recovery.snapshot_seq > 0
        assert recovered.recovery.replayed >= 2
        recovered.close()
        store.close()

    def test_recovery_preserves_lru_recency(self, tmp_path):
        """Touch records keep eviction order identical across a restart."""
        store = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=2)
        store.record(1, [1])
        store.record(2, [2])
        store.encode(1, [1])          # touch: 2 is now the LRU victim
        expected = store.snapshot()
        store.sync()
        recovered = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=2)
        assert recovered.snapshot() == expected
        recovered.record(3, [3])      # evicts 2, not 1 — recency survived
        assert 1 in recovered and 2 not in recovered
        recovered.close()
        store.close()

    def test_sharded_recovery_with_topology_changes(self, tmp_path):
        store = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=16,
                                     shards=2)
        for user in range(10):
            store.record(user, [user])
        store.add_shard(2)
        store.record(11, [4, 5])
        store.remove_shard(0)
        expected = store.snapshot()
        store.sync()
        recovered = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=16,
                                         shards=2)
        assert recovered.snapshot() == expected
        assert recovered.shard_ids() == store.shard_ids()
        recovered.close()
        store.close()

    def test_inspect_durability_reports_disk_state(self, tmp_path):
        store = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=8,
                                     fsync_every=1)
        store.record(1, [1, 2])
        store.record(2, [3])
        store.close()
        report = inspect_durability(tmp_path)
        assert report["snapshot"]["users"] == 2
        assert report["wal"]["records"] == 0      # close() compacts
        assert not report["wal"]["torn_tail"]

    def test_log_reads_off_drops_touch_records(self, tmp_path):
        store = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=8,
                                     log_reads=False, fsync_every=1)
        store.record(1, [1])
        store.encode(1, [1])          # hit: would journal a touch
        store._wal.sync()
        scan = read_wal(tmp_path / "wal.jsonl")
        assert all(record["op"] != "touch" for record in scan.records)
        recovered = DurableSequenceStore(tmp_path, MAX_SEQ_LEN, capacity=8,
                                         log_reads=False)
        assert recovered.history(1) == store.history(1)
        recovered.close()
        store.close()


# --------------------------------------------------------------------------- #
# Atomic on-disk writes
# --------------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_atomic_write_replaces_only_on_success(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with atomic_write(target) as handle:
            handle.write(b"new")
        assert target.read_bytes() == b"new"
        assert list(tmp_path.iterdir()) == [target]   # no temp left behind

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write(b"half")
                raise RuntimeError("simulated crash mid-write")
        assert target.read_bytes() == b"old"
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_replace_cleans_up_temp(self, tmp_path, monkeypatch):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")

        def failing_replace(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            with atomic_write(target) as handle:
                handle.write(b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"old"
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, json.dumps({"ok": True}))
        assert json.loads(target.read_text()) == {"ok": True}

    def test_npz_written_atomically_is_loadable(self, tmp_path):
        target = tmp_path / "arrays.npz"
        with atomic_write(target) as handle:
            np.savez_compressed(handle, values=np.arange(5))
        with np.load(target) as archive:
            assert archive["values"].tolist() == [0, 1, 2, 3, 4]


# --------------------------------------------------------------------------- #
# remove_shard vs in-flight record (regression hammer)
# --------------------------------------------------------------------------- #
class TestRemoveShardRace:
    def test_no_write_lost_while_shards_are_removed(self):
        store = ShardedUserSequenceStore(MAX_SEQ_LEN, capacity=4096,
                                         shards=[0, 1, 2, 3])
        stop = threading.Event()
        errors = []
        recorded = [set() for _ in range(4)]
        # Capacity is split per shard (ceil(4096/4) = 1024), and after the
        # removals every user routes to the lone survivor — keep the whole
        # working set (4 * 128 users) under one shard's capacity so the only
        # way to lose an acknowledged write is the remove_shard race, never
        # LRU eviction.
        distinct = 128

        def hammer(slot):
            count = 0
            while not stop.is_set():
                user = slot + 4 * (count % distinct)
                try:
                    store.record(user, [user % 10, 1])
                    recorded[slot].add(user)
                except Exception as error:  # noqa: BLE001 — fail the test
                    errors.append(error)
                    return
                count += 1

        threads = [threading.Thread(target=hammer, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        removed = []
        for shard_id in (3, 1, 2):
            removed.append(store.remove_shard(shard_id))
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors
        # Every acknowledged write is resident: either on the surviving
        # shard or inside the snapshot remove_shard handed back for
        # migration — the pre-fix race dropped writes on the floor.
        migrated = set()
        for snapshot in removed:
            migrated.update(int(user) for user, _, _ in snapshot["entries"])
        written = set().union(*recorded)
        resident = {user for user in written if user in store}
        lost = written - resident - migrated
        assert not lost, f"{len(lost)} acknowledged writes lost"

    def test_sealed_shard_rejects_then_store_reroutes(self):
        store = ShardedUserSequenceStore(MAX_SEQ_LEN, capacity=64,
                                         shards=[0, 1])
        store.record(1, [1, 2])
        store.remove_shard(0)
        store.record(1, [1, 2])       # rerouted to the surviving shard
        assert 1 in store
        assert store.shard_ids() == (1,)
