"""Tests for the candidate-ranking fast path: decomposed attention kernels,
``InferenceEngine.rank_candidates``/``RankingPlan``, the candidate-expansion
helpers, the batcher/registry rank heads and the ``rank-topk`` service head.

The acceptance bar (ISSUE 3): ``rank_candidates`` matches a per-candidate
``engine.score`` loop to 1e-10 for every view-ablation configuration.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch, FeatureEncoder, pad_sequences
from repro.nn import kernels
from repro.serving import (
    InferenceEngine,
    MicroBatcher,
    ModelRegistry,
    RankRequest,
    UserSequenceStore,
    predict_batch,
    rank_topk_batch,
    serve_jsonl,
)

ATOL = 1e-10

BASE = dict(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=8,
            embed_dim=8, dropout=0.4, seed=3)

#: Every view ablation the engine parity suite covers — the ranking fast path
#: must hold on all of them, including single-view models and last-pooling.
ABLATIONS = [
    {},
    {"ffn_layers": 3},
    {"pooling": "last"},
    {"share_ffn": False},
    {"use_layer_norm": False},
    {"use_residual": False},
    {"use_static_view": False},
    {"use_dynamic_view": False},
    {"use_cross_view": False},
    {"use_static_view": False, "use_cross_view": False},
    {"use_static_view": False, "use_dynamic_view": False},
    {"use_dynamic_view": False, "use_cross_view": False},
]


def trained_like(config: SeqFMConfig, seed: int = 11) -> SeqFM:
    model = SeqFM(config)
    rng = np.random.default_rng(seed)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.2, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


def naive_scores(engine: InferenceEngine, profile, candidates, history) -> np.ndarray:
    """The reference: one single-row engine.score call per candidate."""
    dynamic, mask = pad_sequences([list(history)], engine.config.max_seq_len)
    batch = FeatureBatch.for_candidates(profile, candidates, dynamic[0], mask[0])
    return np.concatenate([
        engine.score(FeatureBatch(
            static_indices=batch.static_indices[row:row + 1],
            dynamic_indices=batch.dynamic_indices[row:row + 1],
            dynamic_mask=batch.dynamic_mask[row:row + 1],
            labels=batch.labels[row:row + 1],
            user_ids=batch.user_ids[row:row + 1],
            object_ids=batch.object_ids[row:row + 1],
        ))
        for row in range(len(batch))
    ])


# --------------------------------------------------------------------------- #
# Decomposed attention kernels
# --------------------------------------------------------------------------- #
class TestDecomposedKernels:
    def test_split_matches_fused_attention(self, rng):
        features = rng.normal(size=(3, 5, 4))
        w_q, w_k, w_v = (rng.normal(size=(4, 4)) for _ in range(3))
        mask = np.where(rng.random((3, 5, 5)) > 0.3, 0.0, -1e9)
        queries, keys, values = kernels.project_qkv(features, w_q, w_k, w_v)
        np.testing.assert_array_equal(queries, features @ w_q)
        fused = kernels.scaled_dot_product_attention(
            features @ w_q, features @ w_k, features @ w_v, mask=mask)
        split = kernels.attend_with_cached_kv(queries, keys, values, mask=mask)
        np.testing.assert_allclose(split, fused, rtol=0.0, atol=1e-15)

    def test_cached_kv_broadcasts_over_candidates(self, rng):
        """One (n, d) history K/V serves a (C, n, d) query stack."""
        history_kv = rng.normal(size=(6, 4))
        queries = rng.normal(size=(5, 6, 4))
        out = kernels.attend_with_cached_kv(queries, history_kv, history_kv)
        per_row = np.stack([
            kernels.attend_with_cached_kv(queries[row], history_kv, history_kv)
            for row in range(5)
        ])
        np.testing.assert_allclose(out, per_row, rtol=0.0, atol=1e-15)

    def test_top_k_matches_stable_argsort(self, rng):
        scores = rng.normal(size=50)
        for k in (1, 7, 50, 80):
            expected = np.argsort(-scores, kind="stable")[:k]
            np.testing.assert_array_equal(kernels.top_k(scores, k), expected)

    def test_top_k_breaks_ties_by_index(self):
        scores = np.array([1.0, 3.0, 3.0, 0.5, 3.0])
        np.testing.assert_array_equal(kernels.top_k(scores, 3), [1, 2, 4])

    def test_top_k_ties_straddling_partition_boundary(self, rng):
        """Heavily tied scores must still match a stable full sort exactly —
        argpartition alone is not tie-stable at the selection boundary."""
        for trial in range(200):
            scores = rng.integers(0, 4, size=rng.integers(1, 60)).astype(np.float64)
            k = int(rng.integers(1, scores.size + 1))
            np.testing.assert_array_equal(
                kernels.top_k(scores, k),
                np.argsort(-scores, kind="stable")[:k],
                err_msg=f"trial={trial} k={k} scores={scores.tolist()}",
            )

    def test_top_k_mask_excludes_candidates(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0])
        mask = np.array([0.0, 1.0, 1.0, 1.0])
        np.testing.assert_array_equal(kernels.top_k(scores, 2, mask=mask), [1, 2])
        # fewer eligible than k: shrink, don't pad
        np.testing.assert_array_equal(
            kernels.top_k(scores, 3, mask=np.array([0.0, 0.0, 0.0, 1.0])), [3])
        assert kernels.top_k(scores, 2, mask=np.zeros(4)).size == 0

    def test_top_k_rejects_bad_input(self):
        with pytest.raises(ValueError):
            kernels.top_k(np.zeros((2, 2)), 1)
        with pytest.raises(ValueError):
            kernels.top_k(np.zeros(4), 0)
        with pytest.raises(ValueError):
            kernels.top_k(np.zeros(4), 1, mask=np.zeros(3))


# --------------------------------------------------------------------------- #
# Engine fast path: parity with the per-candidate loop on every ablation
# --------------------------------------------------------------------------- #
class TestRankCandidatesParity:
    @pytest.mark.parametrize("overrides", ABLATIONS)
    def test_matches_per_candidate_score_loop(self, overrides):
        config = SeqFMConfig(**{**BASE, **overrides})
        model = trained_like(config)
        engine = InferenceEngine(model)
        rng = np.random.default_rng(5)
        profile = np.array([3, 0], dtype=np.int64)
        history = [int(item) for item in rng.integers(1, config.dynamic_vocab_size, 5)]
        candidates = rng.integers(0, config.static_vocab_size, 23, dtype=np.int64)
        expected = naive_scores(engine, profile, candidates, history)
        actual = engine.rank_candidates(profile, candidates, history)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=ATOL)

    @pytest.mark.parametrize("overrides", ABLATIONS)
    def test_matches_model_score_on_expanded_batch(self, overrides):
        """Engine-vs-model parity: the fast path against SeqFM.score itself."""
        config = SeqFMConfig(**{**BASE, **overrides})
        model = trained_like(config)
        engine = InferenceEngine(model)
        rng = np.random.default_rng(6)
        profile = np.array([1, 0], dtype=np.int64)
        history = [int(item) for item in rng.integers(1, config.dynamic_vocab_size, 7)]
        candidates = rng.integers(0, config.static_vocab_size, 17, dtype=np.int64)
        dynamic, mask = pad_sequences([history], config.max_seq_len)
        batch = FeatureBatch.for_candidates(profile, candidates, dynamic[0], mask[0])
        np.testing.assert_allclose(
            engine.rank_candidates(profile, candidates, history),
            model.score(batch),
            rtol=0.0, atol=ATOL,
        )

    def test_empty_history_and_all_padding(self):
        config = SeqFMConfig(**BASE)
        engine = InferenceEngine(trained_like(config))
        profile = np.array([2, 0], dtype=np.int64)
        candidates = np.arange(10, dtype=np.int64)
        scores = engine.rank_candidates(profile, candidates, [])
        assert np.isfinite(scores).all()
        np.testing.assert_allclose(
            scores, naive_scores(engine, profile, candidates, []), rtol=0.0, atol=ATOL)

    def test_history_longer_than_max_seq_len_is_truncated(self):
        config = SeqFMConfig(**BASE)
        engine = InferenceEngine(trained_like(config))
        profile = np.array([2, 0], dtype=np.int64)
        candidates = np.arange(5, dtype=np.int64)
        long_history = [1 + (i % 20) for i in range(3 * config.max_seq_len)]
        np.testing.assert_allclose(
            engine.rank_candidates(profile, candidates, long_history),
            engine.rank_candidates(profile, candidates,
                                   long_history[-config.max_seq_len:]),
            rtol=0.0, atol=0.0,
        )
        # Only the visible suffix is validated: a stale out-of-range event in
        # the truncated-away prefix must not fail the request (the cached
        # sequence-store path truncates before the engine sees indices).
        stale = [999999] + long_history
        np.testing.assert_allclose(
            engine.rank_candidates(profile, candidates, stale),
            engine.rank_candidates(profile, candidates,
                                   long_history[-config.max_seq_len:]),
            rtol=0.0, atol=0.0,
        )

    def test_empty_candidates(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        scores = engine.rank_candidates(np.array([1, 0]), [], [1, 2])
        assert scores.shape == (0,)

    def test_plan_reuse_is_identical(self):
        """One plan, many candidate sets: bitwise-equal to per-call plans."""
        config = SeqFMConfig(**BASE)
        engine = InferenceEngine(trained_like(config))
        profile = np.array([4, 0], dtype=np.int64)
        history = [3, 1, 4, 1, 5]
        plan = engine.prepare_ranking(profile, history)
        rng = np.random.default_rng(9)
        for _ in range(3):
            candidates = rng.integers(0, config.static_vocab_size, 11, dtype=np.int64)
            np.testing.assert_array_equal(
                engine.rank_candidates(profile, candidates, history, plan=plan),
                engine.rank_candidates(profile, candidates, history),
            )

    def test_fresh_call_sees_weight_updates(self):
        """Without an explicit plan, the fast path reads current weights."""
        config = SeqFMConfig(**BASE)
        model = trained_like(config)
        engine = InferenceEngine(model)
        profile = np.array([4, 0], dtype=np.int64)
        candidates = np.arange(8, dtype=np.int64)
        before = engine.rank_candidates(profile, candidates, [1, 2])
        model.projection.data[...] += 1.0
        after = engine.rank_candidates(profile, candidates, [1, 2])
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after, naive_scores(engine, profile, candidates, [1, 2]),
            rtol=0.0, atol=ATOL)

    def test_rank_topk_orders_best_first(self):
        config = SeqFMConfig(**BASE)
        engine = InferenceEngine(trained_like(config))
        profile = np.array([0, 0], dtype=np.int64)
        candidates = np.arange(10, 34, dtype=np.int64)
        top, top_scores = engine.rank_topk(profile, candidates, 5, [2, 3])
        scores = engine.rank_candidates(profile, candidates, [2, 3])
        expected = np.argsort(-scores, kind="stable")[:5]
        np.testing.assert_array_equal(top, candidates[expected])
        np.testing.assert_array_equal(top_scores, scores[expected])

    def test_prepare_ranking_validates_input(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        with pytest.raises(ValueError):
            engine.prepare_ranking(np.array([1, 0]), [], candidate_slot=7)
        with pytest.raises(IndexError):
            engine.prepare_ranking(np.array([999999, 0]), [])
        with pytest.raises(IndexError):
            engine.prepare_ranking(np.array([1, 0]), [999999])
        with pytest.raises(IndexError):
            engine.rank_candidates(np.array([1, 0]), [999999], [])


# --------------------------------------------------------------------------- #
# Index-dtype validation (engine satellite)
# --------------------------------------------------------------------------- #
class TestIndexDtypeValidation:
    def batch(self, **overrides):
        base = dict(
            static_indices=np.array([[1, 2]], dtype=np.int64),
            dynamic_indices=np.array([[0, 0, 1, 2, 3, 4]], dtype=np.int64),
            dynamic_mask=np.array([[0.0, 0.0, 1.0, 1.0, 1.0, 1.0]]),
            labels=np.zeros(1), user_ids=np.zeros(1, dtype=np.int64),
            object_ids=np.zeros(1, dtype=np.int64),
        )
        base.update(overrides)
        return FeatureBatch(**base)

    def test_float_static_indices_rejected(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        batch = self.batch(static_indices=np.array([[1.0, 2.0]]))
        with pytest.raises(TypeError, match="integer dtype"):
            engine.score(batch)

    def test_float_dynamic_indices_rejected(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        batch = self.batch(dynamic_indices=np.array([[0.0, 0.0, 1.0, 2.0, 3.0, 4.0]]))
        with pytest.raises(TypeError, match="integer dtype"):
            engine.score(batch)

    def test_bool_indices_rejected(self):
        """Bool arrays would silently *mask* rows instead of indexing them."""
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        batch = self.batch(static_indices=np.array([[True, False]]))
        with pytest.raises(TypeError, match="integer dtype"):
            engine.score(batch)

    def test_float_candidates_and_history_rejected(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        with pytest.raises(TypeError, match="integer dtype"):
            engine.rank_candidates(np.array([1, 0]), np.array([1.0, 2.0]), [1])
        with pytest.raises(TypeError, match="integer dtype"):
            engine.prepare_ranking(np.array([1.5, 0.5]), [1])

    def test_integer_dtypes_still_accepted(self):
        engine = InferenceEngine(trained_like(SeqFMConfig(**BASE)))
        for dtype in (np.int32, np.int64, np.uint8):
            batch = self.batch(static_indices=np.array([[1, 2]], dtype=dtype))
            assert np.isfinite(engine.score(batch)).all()


# --------------------------------------------------------------------------- #
# Candidate-expansion helpers (repro.data.features)
# --------------------------------------------------------------------------- #
class TestCandidateExpansion:
    def test_for_candidates_layout(self):
        profile = np.array([7, 99], dtype=np.int64)
        candidates = np.array([11, 12, 13], dtype=np.int64)
        dynamic, mask = pad_sequences([[1, 2]], 4)
        batch = FeatureBatch.for_candidates(profile, candidates, dynamic[0], mask[0],
                                            user_id=7)
        assert len(batch) == 3
        np.testing.assert_array_equal(batch.static_indices[:, 0], [7, 7, 7])
        np.testing.assert_array_equal(batch.static_indices[:, 1], candidates)
        np.testing.assert_array_equal(batch.dynamic_indices,
                                      np.tile(dynamic, (3, 1)))
        np.testing.assert_array_equal(batch.object_ids, candidates)
        np.testing.assert_array_equal(batch.user_ids, [7, 7, 7])
        assert batch.dynamic_tile == 3  # rows share one history group

    def test_for_candidates_validation(self):
        dynamic, mask = pad_sequences([[1]], 4)
        with pytest.raises(ValueError):
            FeatureBatch.for_candidates(np.array([1, 2]), np.array([], dtype=np.int64),
                                        dynamic[0], mask[0])
        with pytest.raises(ValueError):
            FeatureBatch.for_candidates(np.array([1, 2]), np.array([3]),
                                        dynamic[0], mask[0], candidate_slot=5)

    def test_encode_candidates_matches_encode(self, tiny_log):
        encoder = FeatureEncoder(tiny_log, max_seq_len=4)
        history = tiny_log.by_user()[0][:-1]
        candidate_objects = encoder.known_objects()[:4]
        profile, candidates, dyn_history = encoder.encode_candidates(
            0, candidate_objects, history)
        assert candidates.shape == (4,)
        for position, obj in enumerate(candidate_objects):
            example = encoder.encode(0, obj, history)
            assert candidates[position] == example.static_indices[1]
            assert profile[0] == example.static_indices[0]
            padded, _ = pad_sequences([dyn_history], encoder.max_seq_len)
            np.testing.assert_array_equal(padded[0], example.dynamic_indices)

    def test_encode_candidates_rejects_unknown(self, tiny_log):
        encoder = FeatureEncoder(tiny_log, max_seq_len=4)
        with pytest.raises(KeyError):
            encoder.encode_candidates(999, [10], [])
        with pytest.raises(KeyError):
            encoder.encode_candidates(0, [999], [])
        with pytest.raises(ValueError):
            encoder.encode_candidates(0, [], [])


# --------------------------------------------------------------------------- #
# Batcher rank head, registry endpoint, service head
# --------------------------------------------------------------------------- #
CONFIG = SeqFMConfig(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=6,
                     embed_dim=8, dropout=0.0, seed=5)


@pytest.fixture
def model() -> SeqFM:
    return trained_like(CONFIG, seed=2)


@pytest.fixture
def engine(model: SeqFM) -> InferenceEngine:
    return InferenceEngine(model)


class TestRankHead:
    def test_rank_head_matches_engine(self, engine):
        store = UserSequenceStore(CONFIG.max_seq_len, capacity=4)
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                               sequence_store=store, rank_fn=engine.rank_topk)
        request = RankRequest(static_indices=[2, 0], candidates=list(range(10, 30)),
                              history=[1, 2, 3], user_id=5)
        result = batcher.rank(request, k=4)
        scores = engine.rank_candidates([2, 0], list(range(10, 30)), [1, 2, 3])
        order = np.argsort(-scores, kind="stable")[:4]
        np.testing.assert_array_equal(result.candidates,
                                      np.arange(10, 30, dtype=np.int64)[order])
        np.testing.assert_allclose(result.scores, scores[order], rtol=0.0, atol=ATOL)
        assert len(result) == 4
        # repeat request hits the sequence store
        batcher.rank(request, k=4)
        assert store.stats.hits == 1
        assert batcher.stats.rows_scored == 40

    def test_rank_head_without_store(self, engine):
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                               rank_fn=engine.rank_topk)
        request = RankRequest(static_indices=[2, 0], candidates=[10, 11], history=[1])
        result = batcher.rank(request)  # no k: every candidate, ranked
        assert len(result) == 2
        assert result.scores[0] >= result.scores[1]

    def test_request_k_is_default_cut(self, engine):
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                               rank_fn=engine.rank_topk)
        request = RankRequest(static_indices=[2, 0], candidates=[10, 11, 12], k=2)
        assert len(batcher.rank(request)) == 2
        assert len(batcher.rank(request, k=1)) == 1  # explicit k wins

    def test_empty_candidates(self, engine):
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                               rank_fn=engine.rank_topk)
        result = batcher.rank(RankRequest(static_indices=[2, 0], candidates=[]))
        assert len(result) == 0

    def test_missing_rank_fn_raises(self, engine):
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len)
        with pytest.raises(RuntimeError):
            batcher.rank(RankRequest(static_indices=[2, 0], candidates=[1]))

    def test_registry_rank_topk(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        result = registry.rank_topk("m", [2, 0], list(range(10, 25)), 3,
                                    history=[1, 2], user_id=4)
        engine = registry.get("m").engine
        scores = engine.rank_candidates([2, 0], list(range(10, 25)), [1, 2])
        order = np.argsort(-scores, kind="stable")[:3]
        np.testing.assert_array_equal(result.candidates,
                                      np.arange(10, 25, dtype=np.int64)[order])
        # the shared sequence store caches across calls
        registry.rank_topk("m", [2, 0], list(range(10, 25)), 3,
                           history=[1, 2], user_id=4)
        assert registry.get("m").sequence_store.stats.hits == 1

    def test_registry_batcher_rejects_unknown_head(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError):
            registry.get("m").batcher(head="frobnicate")


class TestRankTopkService:
    def payloads(self):
        return [
            {"static_indices": [2, 0], "candidates": [10, 11, 12, 13],
             "history": [1, 2], "user_id": 1, "k": 2},
            {"static_indices": [3, 0], "candidates": [20, 21]},
        ]

    def test_rank_topk_batch_payload(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        response = rank_topk_batch(registry, "m", self.payloads())
        assert response["head"] == "rank-topk"
        assert len(response["results"]) == 2
        assert len(response["results"][0]["candidates"]) == 2  # per-request k
        assert len(response["results"][1]["candidates"]) == 2  # no k: all ranked
        stats = response["stats"]
        assert stats["requests"] == 2 and stats["candidates_ranked"] == 6
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_default_k_applies_to_bare_requests(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        response = rank_topk_batch(registry, "m", self.payloads(), k=1)
        assert len(response["results"][0]["candidates"]) == 2  # request k wins
        assert len(response["results"][1]["candidates"]) == 1  # default applied

    def test_predict_batch_delegates_rank_topk_head(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        response = predict_batch(registry, "m", self.payloads(), head="rank-topk")
        assert response["head"] == "rank-topk" and "results" in response

    def test_predict_batch_stats_carry_hit_rate(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        payloads = [{"static_indices": [1, 2], "history": [1], "user_id": 3}] * 2
        response = predict_batch(registry, "m", payloads)
        assert response["stats"]["cache_hits"] == 1
        assert response["stats"]["cache_hit_rate"] == 0.5

    def test_rank_topk_batch_rejects_empty(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError):
            rank_topk_batch(registry, "m", [])

    def test_serve_jsonl_rank_topk_head(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        lines = [json.dumps(self.payloads()[0]),        # dict → bare result
                 json.dumps(self.payloads()),           # list → {"results": [...]}
                 json.dumps({"candidates": [1]})]       # missing static_indices
        output = io.StringIO()
        summary = serve_jsonl(registry, "m", io.StringIO("\n".join(lines) + "\n"),
                              output, head="rank-topk")
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        # rows = returned items: line 1 cuts 4 candidates to k=2, line 2
        # returns 2 (k=2) + 2 (no k → all candidates).
        assert summary.rows == 2 + 4
        assert summary.lines == 3 and summary.errors == 1 and summary.served == 2
        assert responses[0]["candidates"] == responses[1]["results"][0]["candidates"]
        assert len(responses[1]["results"]) == 2
        assert "error" in responses[2]

    def test_serve_jsonl_rank_topk_default_k(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        line = json.dumps({"static_indices": [2, 0], "candidates": [10, 11, 12]})
        output = io.StringIO()
        serve_jsonl(registry, "m", io.StringIO(line + "\n"), output,
                    head="rank-topk", k=2)
        response = json.loads(output.getvalue())
        assert len(response["candidates"]) == 2
