"""Online-learning battery: WAL tailing, cursor, gate, promotion, full loop.

Proves the contract of :mod:`repro.online` end to end:

* ``read_wal``'s cursor arguments: ``since_seq`` filtering, the anchored
  byte-offset fast path, and the compaction-boundary regression — a cursor
  taken at (or past) a compaction point must fall back to a full scan and
  never lose or duplicate records;
* :class:`InteractionLogReader`: durable cursor round trips, forward-only
  advancement, tails that do not consume, compacted-gap detection;
* ``build_training_examples``: per-user history replay on top of the train
  split, vocabulary drops counted rather than guessed at;
* :class:`EvalGate`: sign-adjusted deltas, lower-is-better metrics,
  tolerance boundaries and deterministic scoring;
* :class:`IncrementalTrainer`: warm-start isolation (the serving weights
  never move during candidate training) and the newest-first example cap;
* :class:`ModelLineage` / :class:`PromotionPipeline`: manifest persistence,
  versioned checkpoints, hot-swap with index rebuild, rejection touching
  nothing;
* the full loop: recommend → click → retrain → recommend moves clicked
  items strictly up the ranking; a rerun from the same cursor is a no-op; a
  failing gate leaves registry, index and cursor untouched;
* the CLI surface: ``retrain --dry-run`` prints the verdict without mutating
  anything, ``train`` emits a parseable held-out-metrics block, ``status``
  folds in the online state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.model import SeqFM
from repro.core.tasks import make_task_model
from repro.core.trainer import Trainer
from repro.experiments.registry import build_context
from repro.online import (
    CURSOR_NAME,
    EvalGate,
    GateConfig,
    GateVerdict,
    IncrementalTrainer,
    IncrementalTrainerConfig,
    InteractionLogReader,
    LogCursor,
    LoggedInteraction,
    MANIFEST_NAME,
    ModelLineage,
    ModelVersion,
    PromotionPipeline,
    base_histories_from_split,
    build_training_examples,
    inspect_online,
    retrain_once,
)
from repro.serving import ModelRegistry
from repro.serving.durability import WAL_NAME, WriteAheadLog, read_wal


# --------------------------------------------------------------------------- #
# Shared context: one quick dataset + one short-trained model per module
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def ctx():
    return build_context("gowalla", "quick")


@pytest.fixture(scope="module")
def trained_state(ctx):
    """Config + state dict of a short-trained ranking model (copy per use)."""
    model = SeqFM(ctx.seqfm_config())
    task_model = make_task_model(model, ctx.task)
    Trainer(task_model, ctx.encoder, sampler=ctx.sampler,
            config=ctx.trainer_config(epochs=2)).fit(ctx.train_examples)
    return model.config, model.state_dict()


@pytest.fixture
def trained_model(trained_state):
    config, state = trained_state
    model = SeqFM(config)
    model.load_state_dict(state)
    return model


def make_wal(path, count, start=0):
    wal = WriteAheadLog(path)
    for i in range(count):
        wal.append({"op": "record", "user": 1 + (start + i) % 3,
                    "fp": [1, 2], "stamp": 0.0, "events": [1 + i % 4]})
    wal.sync()
    return wal


# --------------------------------------------------------------------------- #
# read_wal cursor arguments
# --------------------------------------------------------------------------- #
class TestReadWalCursor:
    def test_since_seq_filters_and_counts(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 5)
        scan = read_wal(tmp_path / WAL_NAME, since_seq=2)
        assert [r["seq"] for r in scan.records] == [3, 4, 5]
        assert scan.skipped == 2 and not scan.seeked
        assert scan.last_seq == 5
        wal.close()

    def test_anchored_offset_takes_fast_path(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 3)
        anchor = read_wal(tmp_path / WAL_NAME).valid_bytes
        for i in range(2):
            wal.append({"op": "record", "user": 1, "fp": [i], "stamp": 0.0,
                        "events": [1]})
        wal.sync()
        scan = read_wal(tmp_path / WAL_NAME, since_seq=3, start_offset=anchor)
        assert scan.seeked and scan.skipped == 0
        assert [r["seq"] for r in scan.records] == [4, 5]
        # fast path and full scan agree record for record
        full = read_wal(tmp_path / WAL_NAME, since_seq=3)
        assert full.records == scan.records and not full.seeked
        wal.close()

    def test_misaligned_offset_falls_back_to_full_scan(self, tmp_path):
        make_wal(tmp_path / WAL_NAME, 4).close()
        anchor = read_wal(tmp_path / WAL_NAME, since_seq=2).valid_bytes
        for bad in (1, anchor - 3, anchor + 10 ** 6):
            scan = read_wal(tmp_path / WAL_NAME, since_seq=2, start_offset=bad)
            assert not scan.seeked
            assert [r["seq"] for r in scan.records] == [3, 4]

    def test_offset_at_wrong_record_boundary_falls_back(self, tmp_path):
        """A real record boundary whose record is NOT since_seq must not be
        trusted — that is exactly the post-compaction aliasing hazard."""
        make_wal(tmp_path / WAL_NAME, 5).close()
        data = (tmp_path / WAL_NAME).read_bytes()
        # boundary after the SECOND record, claimed as the cursor of seq 3
        second_end = data.find(b"\n", data.find(b"\n") + 1) + 1
        scan = read_wal(tmp_path / WAL_NAME, since_seq=3,
                        start_offset=second_end)
        assert not scan.seeked
        assert [r["seq"] for r in scan.records] == [4, 5]
        assert scan.skipped == 3

    def test_cursor_at_compaction_point_survives(self, tmp_path):
        """Regression: compact() rewrites the file, so a byte offset taken
        before compaction is stale; the scan must fall back and return
        exactly the unconsumed records — none lost, none doubled."""
        wal = make_wal(tmp_path / WAL_NAME, 5)
        anchor = read_wal(tmp_path / WAL_NAME, since_seq=3).valid_bytes
        wal.compact(3)  # snapshot covers seq <= 3; file now holds 4, 5
        scan = read_wal(tmp_path / WAL_NAME, since_seq=3, start_offset=anchor)
        assert not scan.seeked and scan.skipped == 0
        assert [r["seq"] for r in scan.records] == [4, 5]
        wal.close()

    def test_cursor_past_compaction_point_still_filters(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 6)
        stale = read_wal(tmp_path / WAL_NAME, since_seq=5).valid_bytes
        wal.compact(2)  # file now holds 3..6, re-encoded at new offsets
        scan = read_wal(tmp_path / WAL_NAME, since_seq=5, start_offset=stale)
        assert not scan.seeked
        assert [r["seq"] for r in scan.records] == [6]
        assert scan.skipped == 3  # 3, 4, 5 validated but already consumed
        wal.close()

    def test_fully_compacted_log_yields_empty_tail(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 4)
        anchor = read_wal(tmp_path / WAL_NAME).valid_bytes
        wal.compact(4)
        scan = read_wal(tmp_path / WAL_NAME, since_seq=4, start_offset=anchor)
        assert scan.records == [] and not scan.seeked and scan.last_seq == 0
        wal.close()


# --------------------------------------------------------------------------- #
# InteractionLogReader: cursor + tailing
# --------------------------------------------------------------------------- #
class TestInteractionLogReader:
    def test_cursor_round_trips_through_disk(self, tmp_path):
        make_wal(tmp_path / WAL_NAME, 3).close()
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        assert reader.cursor == LogCursor()
        tail = reader.tail()
        reader.advance(tail.cursor)
        reborn = InteractionLogReader(tmp_path / WAL_NAME)
        assert reborn.cursor == tail.cursor
        assert reborn.cursor.seq == 3

    def test_tail_does_not_advance_the_cursor(self, tmp_path):
        make_wal(tmp_path / WAL_NAME, 3).close()
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        reader.tail()
        assert reader.cursor == LogCursor()
        assert not (tmp_path / CURSOR_NAME).exists()

    def test_advance_refuses_backwards(self, tmp_path):
        make_wal(tmp_path / WAL_NAME, 3).close()
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        reader.advance(reader.tail().cursor)
        with pytest.raises(ValueError, match="backwards"):
            reader.advance(LogCursor(seq=1, offset=10))

    def test_second_tail_is_empty_and_seeked(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 4)
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        reader.advance(reader.tail().cursor)
        again = reader.tail()
        assert again.interactions == [] and again.seeked
        # new traffic resumes from the fast path
        wal.append({"op": "record", "user": 2, "fp": [9], "stamp": 0.0,
                    "events": [2, 3]})
        wal.sync()
        fresh = reader.tail()
        assert fresh.seeked and [i.seq for i in fresh.interactions] == [5]
        assert fresh.interactions[0].events == (2, 3)
        wal.close()

    def test_non_record_ops_are_counted_not_converted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / WAL_NAME)
        wal.append({"op": "record", "user": 1, "fp": [1], "stamp": 0.0,
                    "events": [1]})
        wal.append({"op": "touch", "user": 1})
        wal.append({"op": "evict", "user": 1})
        wal.sync()
        tail = InteractionLogReader(tmp_path / WAL_NAME).tail()
        assert len(tail.interactions) == 1 and tail.other_ops == 2
        assert tail.cursor.seq == 3  # the cursor covers every op, not just records
        wal.close()

    def test_compacted_gap_is_reported(self, tmp_path):
        wal = make_wal(tmp_path / WAL_NAME, 5)
        wal.compact(4)  # events 3, 4 (seq > consumed 2) are gone for good
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        reader.advance(LogCursor(seq=2, offset=0))
        tail = reader.tail()
        assert [i.seq for i in tail.interactions] == [5]
        assert tail.compacted_gap == 2
        wal.close()

    def test_clean_shutdown_compaction_reports_the_full_gap(self, tmp_path):
        """A durable server's clean close checkpoints + compacts: the clicks
        fold into snapshot.json and NO record survives in the journal.  The
        reader must still report how many events it can never train on."""
        from repro.serving import DurableSequenceStore

        store = DurableSequenceStore(tmp_path, max_seq_len=8)
        store.record(1, [2, 3])
        store.record(2, [4])
        store.close()  # the clean-shutdown path
        tail = InteractionLogReader(tmp_path / WAL_NAME).tail()
        assert tail.interactions == []
        assert tail.compacted_gap == 2
        # consuming past the snapshot silences the gap on the next tail
        reader = InteractionLogReader(tmp_path / WAL_NAME)
        reader.advance(LogCursor(seq=2, offset=0))
        assert reader.tail().compacted_gap == 0

    def test_custom_cursor_path(self, tmp_path):
        make_wal(tmp_path / WAL_NAME, 2).close()
        cursor_path = tmp_path / "elsewhere" / "cursor.json"
        cursor_path.parent.mkdir()
        reader = InteractionLogReader(tmp_path / WAL_NAME,
                                      cursor_path=cursor_path)
        reader.advance(reader.tail().cursor)
        assert cursor_path.exists()
        assert json.loads(cursor_path.read_text())["seq"] == 2

    def test_cursor_format_guard(self, tmp_path):
        (tmp_path / CURSOR_NAME).write_text(
            json.dumps({"format": 99, "seq": 1, "offset": 5}))
        with pytest.raises(ValueError, match="format"):
            InteractionLogReader(tmp_path / WAL_NAME)


# --------------------------------------------------------------------------- #
# Interaction → example conversion
# --------------------------------------------------------------------------- #
class TestBuildTrainingExamples:
    def test_examples_replay_history_in_order(self, ctx):
        user = int(ctx.encoder.known_users()[0])
        interactions = [LoggedInteraction(seq=1, user_id=user, events=(1, 2)),
                        LoggedInteraction(seq=2, user_id=user, events=(3,))]
        build = build_training_examples(interactions, ctx.encoder)
        assert len(build.examples) == 3
        assert build.dropped_users == 0 and build.dropped_events == 0
        first, second, third = build.examples
        # the i-th click trains against the history *before* it happened
        assert int(first.dynamic_mask.sum()) == 0
        assert int(second.dynamic_mask.sum()) == 1
        assert int(third.dynamic_mask.sum()) == 2
        # static layout: [user_index, num_users + (dyn - 1)]
        assert first.static_indices[0] == int(ctx.encoder.static_user_index(user))
        assert first.static_indices[1] == ctx.encoder.num_users + 0
        assert first.label == 1.0 and first.user_id == user
        assert first.object_id == int(ctx.encoder.known_objects()[0])

    def test_base_histories_seed_the_replay(self, ctx):
        user = int(ctx.encoder.known_users()[0])
        interactions = [LoggedInteraction(seq=1, user_id=user, events=(2,))]
        base = {user: [1, 3, 2]}
        build = build_training_examples(interactions, ctx.encoder,
                                        base_histories=base)
        example = build.examples[0]
        assert int(example.dynamic_mask.sum()) == 3
        assert list(example.dynamic_indices[-3:]) == [1, 3, 2]  # left-padded
        assert base[user] == [1, 3, 2]  # caller's history not mutated

    def test_unknown_users_and_events_are_dropped_and_counted(self, ctx):
        user = int(ctx.encoder.known_users()[0])
        vocab = ctx.encoder.dynamic_vocab_size
        interactions = [
            LoggedInteraction(seq=1, user_id=10 ** 9, events=(1,)),
            LoggedInteraction(seq=2, user_id=user, events=(0, vocab, 1)),
        ]
        build = build_training_examples(interactions, ctx.encoder)
        assert len(build.examples) == 1
        assert build.dropped_users == 1 and build.dropped_events == 2

    def test_base_histories_from_split_speak_dynamic_indices(self, ctx):
        histories = base_histories_from_split(ctx.split, ctx.encoder)
        assert histories  # quick scale always has active users
        user, history = next(iter(histories.items()))
        assert all(1 <= dyn < ctx.encoder.dynamic_vocab_size
                   for dyn in history)
        raw = [int(ctx.encoder.dynamic_object_index(event.object_id))
               for event in ctx.split.history[user]]
        assert history == raw


# --------------------------------------------------------------------------- #
# EvalGate
# --------------------------------------------------------------------------- #
class TestEvalGate:
    def make_gate(self, tolerance=0.02, metrics=()):
        # judge() needs no models, so a bare instance with config suffices
        return EvalGate(encoder=None, log=None, split=None, task="ranking",
                        config=GateConfig(tolerance=tolerance, metrics=metrics))

    def test_improvement_and_tolerated_slip_pass(self):
        gate = self.make_gate(tolerance=0.05)
        verdict = gate.judge({"HR@10": 0.50, "NDCG@10": 0.30},
                             {"HR@10": 0.46, "NDCG@10": 0.32})
        assert verdict.passed and verdict.reasons == ()
        assert verdict.deltas["HR@10"] == pytest.approx(-0.04)
        assert verdict.deltas["NDCG@10"] == pytest.approx(0.02)

    def test_regression_beyond_tolerance_fails_with_reason(self):
        gate = self.make_gate(tolerance=0.02)
        verdict = gate.judge({"HR@10": 0.50}, {"HR@10": 0.40})
        assert not verdict.passed
        assert "HR@10 regressed" in verdict.reasons[0]

    def test_lower_is_better_metrics_flip_direction(self):
        gate = self.make_gate(tolerance=0.02)
        better = gate.judge({"RMSE": 1.00}, {"RMSE": 0.90})
        worse = gate.judge({"RMSE": 1.00}, {"RMSE": 1.10})
        assert better.passed and better.deltas["RMSE"] == pytest.approx(0.1)
        assert not worse.passed

    def test_negative_tolerance_demands_improvement(self):
        gate = self.make_gate(tolerance=-0.05)
        assert not gate.judge({"HR@10": 0.5}, {"HR@10": 0.5}).passed
        assert gate.judge({"HR@10": 0.5}, {"HR@10": 0.60}).passed

    def test_gated_metric_subset_and_missing_key(self):
        gate = self.make_gate(metrics=("HR@10",))
        verdict = gate.judge({"HR@10": 0.5, "NDCG@10": 0.3},
                             {"HR@10": 0.5, "NDCG@10": 0.0})
        assert verdict.passed  # NDCG collapse is not gated
        with pytest.raises(KeyError, match="HR@10"):
            gate.judge({"NDCG@10": 0.3}, {"NDCG@10": 0.3})

    def test_score_is_deterministic_across_calls(self, ctx, trained_model):
        gate = EvalGate(ctx.encoder, ctx.log, ctx.split, ctx.task,
                        config=GateConfig(max_users=15))
        task_model = make_task_model(trained_model, ctx.task)
        assert gate.score(task_model) == gate.score(task_model)

    def test_verdict_round_trips_as_dict(self):
        verdict = self.make_gate().judge({"HR@10": 0.5}, {"HR@10": 0.4})
        doc = verdict.as_dict()
        assert doc["passed"] is False and doc["reasons"]
        assert json.loads(json.dumps(doc)) == doc


# --------------------------------------------------------------------------- #
# IncrementalTrainer
# --------------------------------------------------------------------------- #
class TestIncrementalTrainer:
    def test_warm_start_is_isolated_from_the_source(self, ctx, trained_model):
        trainer = IncrementalTrainer(ctx.encoder, ctx.sampler, task=ctx.task,
                                     config=IncrementalTrainerConfig(epochs=1))
        before = {k: v.copy() for k, v in trained_model.state_dict().items()}
        result = trainer.fit_tail(trained_model, ctx.train_examples[:40])
        after = trained_model.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(value, after[key])
        # ... while the candidate actually moved
        candidate = result.task_model.scorer.state_dict()
        assert any(not np.array_equal(candidate[k], before[k]) for k in before)

    def test_max_examples_keeps_the_newest(self, ctx, trained_model):
        trainer = IncrementalTrainer(
            ctx.encoder, ctx.sampler, task=ctx.task,
            config=IncrementalTrainerConfig(epochs=1, max_examples=10))
        result = trainer.fit_tail(trained_model, ctx.train_examples[:25])
        assert result.examples_used == 10 and result.examples_capped == 15

    def test_empty_tail_is_rejected(self, ctx, trained_model):
        trainer = IncrementalTrainer(ctx.encoder, ctx.sampler, task=ctx.task)
        with pytest.raises(ValueError, match="no examples"):
            trainer.fit_tail(trained_model, [])

    def test_regression_has_no_online_path(self, ctx):
        with pytest.raises(ValueError, match="regression"):
            IncrementalTrainer(ctx.encoder, ctx.sampler, task="regression")


# --------------------------------------------------------------------------- #
# ModelLineage manifest
# --------------------------------------------------------------------------- #
def version(number, status="promoted", seq=5):
    return ModelVersion(version=number, status=status,
                        checkpoint=f"m@v{number}.npz" if status == "promoted"
                        else None,
                        cursor_seq=seq, parent=number - 1, gate={},
                        examples=3)


class TestModelLineage:
    def test_manifest_round_trips_through_disk(self, tmp_path):
        lineage = ModelLineage(tmp_path, name="m")
        lineage.record(version(1))
        lineage.record(version(2, status="rejected", seq=9))
        reborn = ModelLineage(tmp_path)
        assert reborn.name == "m"  # remembered by the manifest
        assert [v.version for v in reborn.versions] == [1, 2]
        assert reborn.active.version == 1  # rejected entries are not active
        assert reborn.next_version() == 3
        assert reborn.tag(3) == "m@v3"
        assert reborn.checkpoint_path(1).name == "m@v1.npz"

    def test_status_payload_counts(self, tmp_path):
        lineage = ModelLineage(tmp_path, name="m")
        assert lineage.status_payload()["active"] is None
        lineage.record(version(1))
        lineage.record(version(2, status="rejected"))
        payload = lineage.status_payload()
        assert payload["versions"] == 2 and payload["promoted"] == 1
        assert payload["rejected"] == 1 and payload["active"] == "m@v1"
        assert payload["last"]["status"] == "rejected"

    def test_undeclared_status_and_reused_version_are_rejected(self, tmp_path):
        lineage = ModelLineage(tmp_path, name="m")
        lineage.record(version(1))
        with pytest.raises(ValueError, match="MANIFEST_STATUSES"):
            # repro: allow[protocol-completeness] — deliberately invalid
            lineage.record(ModelVersion(version=2, status="rolled-back",
                                        checkpoint=None, cursor_seq=0,
                                        parent=1, gate={}, examples=0))
        with pytest.raises(ValueError, match="already recorded"):
            lineage.record(version(1))


# --------------------------------------------------------------------------- #
# Promotion pipeline + status head surface
# --------------------------------------------------------------------------- #
def serving_setup(ctx, model, tmp_path, n_retrieve=None):
    """Registry with index + durable WAL + reader + lineage, ready to click."""
    registry = ModelRegistry()
    registry.register("m", model)
    catalog = range(ctx.encoder.num_users,
                    ctx.encoder.num_users + ctx.encoder.num_objects)
    registry.build_index("m", catalog,
                         n_retrieve=n_retrieve or ctx.encoder.num_objects)
    durable = registry.enable_durability("m", tmp_path / "state")
    wal_path = tmp_path / "state" / WAL_NAME
    online = tmp_path / "online"
    reader = InteractionLogReader(wal_path, cursor_path=online / CURSOR_NAME)
    lineage = ModelLineage(online, name="m")
    return registry, durable, wal_path, online, reader, lineage


class TestPromotionPipeline:
    def click(self, durable, ctx, events=(1, 2), users=3):
        for user in ctx.encoder.known_users()[:users]:
            durable.record(int(user), list(events))
        durable.sync()

    def passing_verdict(self):
        return GateVerdict(passed=True, baseline={"HR@10": 0.5},
                           candidate={"HR@10": 0.5}, deltas={"HR@10": 0.0},
                           tolerance=0.1, reasons=())

    def failing_verdict(self):
        return GateVerdict(passed=False, baseline={"HR@10": 0.5},
                           candidate={"HR@10": 0.1},
                           deltas={"HR@10": -0.4}, tolerance=0.1,
                           reasons=("HR@10 regressed by 0.4",))

    def test_promote_swaps_registry_index_and_cursor(self, ctx, trained_model,
                                                     tmp_path):
        registry, durable, _, online, reader, lineage = serving_setup(
            ctx, trained_model, tmp_path)
        self.click(durable, ctx)
        tail = reader.tail()
        trainer = IncrementalTrainer(ctx.encoder, ctx.sampler, task=ctx.task,
                                     config=IncrementalTrainerConfig(epochs=1))
        build = build_training_examples(tail.interactions, ctx.encoder)
        result = trainer.fit_tail(trained_model, build.examples)
        old_index = registry.get("m").index

        pipeline = PromotionPipeline(registry, "m", lineage, reader)
        promoted = pipeline.promote(result.task_model, self.passing_verdict(),
                                    tail, examples=result.examples_used)
        assert promoted.version == 1 and promoted.status == "promoted"
        entry = registry.get("m")
        # weights hot-swapped to the candidate's
        np.testing.assert_array_equal(
            entry.model.state_dict()["projection"],
            result.task_model.scorer.state_dict()["projection"])
        # index rebuilt from the new weights, not orphaned, not stale
        assert entry.index is not None and entry.index is not old_index
        assert entry.lineage is lineage
        assert reader.cursor == tail.cursor
        assert (online / MANIFEST_NAME).exists()
        assert lineage.checkpoint_path(1).exists()

    def test_reject_touches_only_the_manifest(self, ctx, trained_model,
                                              tmp_path):
        registry, durable, _, online, reader, lineage = serving_setup(
            ctx, trained_model, tmp_path)
        self.click(durable, ctx)
        tail = reader.tail()
        entry = registry.get("m")
        weights_before = entry.model.state_dict()["projection"].copy()
        index_before = entry.index

        pipeline = PromotionPipeline(registry, "m", lineage, reader)
        rejected = pipeline.reject(self.failing_verdict(), tail, examples=6)
        assert rejected.status == "rejected" and rejected.checkpoint is None
        np.testing.assert_array_equal(
            entry.model.state_dict()["projection"], weights_before)
        assert entry.index is index_before
        assert reader.cursor == LogCursor()  # cursor never moved
        assert not lineage.checkpoint_path(rejected.version).exists()
        assert ModelLineage(online).active is None

    def test_promote_refuses_a_failed_verdict(self, ctx, trained_model,
                                              tmp_path):
        registry, durable, _, _, reader, lineage = serving_setup(
            ctx, trained_model, tmp_path)
        self.click(durable, ctx)
        tail = reader.tail()
        pipeline = PromotionPipeline(registry, "m", lineage, reader)
        with pytest.raises(ValueError, match="reject"):
            pipeline.promote(make_task_model(trained_model, ctx.task),
                             self.failing_verdict(), tail, examples=1)

    def test_status_head_serves_the_retrain_block(self, ctx, trained_model,
                                                  tmp_path):
        from repro.serving.protocol import ServingRouter

        registry, durable, _, _, reader, lineage = serving_setup(
            ctx, trained_model, tmp_path)
        lineage.record(version(1, seq=7))
        registry.get("m").lineage = lineage
        payload = ServingRouter(registry, default_model="m").status_payload()
        block = payload["models"]["m"]["retrain"]
        assert block["active"] == "m@v1" and block["cursor_seq"] == 7
        assert block["versions"] == 1


# --------------------------------------------------------------------------- #
# The full loop: recommend → click → retrain → recommend
# --------------------------------------------------------------------------- #
class TestFullLoop:
    def ranks(self, ctx, entry, users, targets, histories):
        """Full-catalog rank position (0 = best) of each user's target."""
        catalog = np.arange(ctx.encoder.num_users,
                            ctx.encoder.num_users + ctx.encoder.num_objects)
        positions = {}
        for user in users:
            profile = np.array([int(ctx.encoder.static_user_index(user)),
                                int(catalog[0])], dtype=np.int64)
            ids, _ = entry.engine.rank_topk(profile, catalog, len(catalog),
                                            histories[user])
            positions[user] = list(ids).index(targets[user])
        return positions

    def test_clicks_move_their_items_up_and_rerun_is_noop(self, ctx,
                                                          trained_model,
                                                          tmp_path):
        registry, durable, wal_path, online, reader, _ = serving_setup(
            ctx, trained_model, tmp_path)
        entry = registry.get("m")
        users = [int(u) for u in ctx.encoder.known_users()[:3]]
        histories = {u: base_histories_from_split(ctx.split, ctx.encoder)
                     .get(u, []) for u in users}

        # each user's target: the item the model currently ranks worst
        catalog = np.arange(ctx.encoder.num_users,
                            ctx.encoder.num_users + ctx.encoder.num_objects)
        targets = {}
        for user in users:
            profile = np.array([int(ctx.encoder.static_user_index(user)),
                                int(catalog[0])], dtype=np.int64)
            ids, _ = entry.engine.rank_topk(profile, catalog, len(catalog),
                                            histories[user])
            targets[user] = int(ids[-1])
        before = self.ranks(ctx, entry, users, targets, histories)

        # click each target repeatedly through the durable store (the same
        # journal the update head writes)
        for user in users:
            dyn = targets[user] - ctx.encoder.num_users + 1
            durable.record(user, [dyn] * 8)
        durable.sync()

        kwargs = dict(wal_path=wal_path, online_dir=online,
                      encoder=ctx.encoder, log=ctx.log, split=ctx.split,
                      task=ctx.task)
        report = retrain_once(
            registry, "m",
            gate_config=GateConfig(tolerance=5.0, max_users=15),
            trainer_config=IncrementalTrainerConfig(
                epochs=6, learning_rate=2e-2, batch_size=16),
            **kwargs)
        assert report.status == "promoted"
        assert report.events == 24 and report.examples == 24
        assert report.tag == "m@v1"

        after = self.ranks(ctx, entry, users, targets, histories)
        for user in users:
            assert after[user] < before[user], (
                f"user {user}: clicked item rank {before[user]} -> "
                f"{after[user]} did not improve")

        # idempotency: same cursor, nothing new → a no-op that mutates nothing
        cursor_doc = (online / CURSOR_NAME).read_text()
        manifest_doc = (online / MANIFEST_NAME).read_text()
        rerun = retrain_once(registry, "m",
                             gate_config=GateConfig(tolerance=5.0,
                                                    max_users=15), **kwargs)
        assert rerun.status == "no_new_events" and rerun.seeked
        assert (online / CURSOR_NAME).read_text() == cursor_doc
        assert (online / MANIFEST_NAME).read_text() == manifest_doc

        # a failing gate (negative tolerance demands impossible improvement)
        # audits the attempt and leaves registry, index and cursor untouched
        durable.record(users[0], [1])
        durable.sync()
        weights = entry.model.state_dict()["projection"].copy()
        index_obj = entry.index
        failed = retrain_once(
            registry, "m",
            gate_config=GateConfig(tolerance=-1.0, max_users=15),
            trainer_config=IncrementalTrainerConfig(epochs=1), **kwargs)
        assert failed.status == "rejected" and failed.verdict.reasons
        np.testing.assert_array_equal(
            entry.model.state_dict()["projection"], weights)
        assert entry.index is index_obj
        assert (online / CURSOR_NAME).read_text() == cursor_doc
        manifest = ModelLineage(online)
        assert [v.status for v in manifest.versions] == ["promoted",
                                                         "rejected"]
        assert manifest.active.version == 1

    def test_dry_run_reports_without_mutating(self, ctx, trained_model,
                                              tmp_path):
        registry, durable, wal_path, online, reader, _ = serving_setup(
            ctx, trained_model, tmp_path)
        for user in ctx.encoder.known_users()[:2]:
            durable.record(int(user), [1, 2])
        durable.sync()
        weights = registry.get("m").model.state_dict()["projection"].copy()
        report = retrain_once(
            registry, "m", wal_path=wal_path, online_dir=online,
            encoder=ctx.encoder, log=ctx.log, split=ctx.split, task=ctx.task,
            gate_config=GateConfig(tolerance=5.0, max_users=10),
            trainer_config=IncrementalTrainerConfig(epochs=1), dry_run=True)
        assert report.status == "dry_run"
        assert report.verdict is not None and report.examples == 4
        np.testing.assert_array_equal(
            registry.get("m").model.state_dict()["projection"], weights)
        assert not (online / CURSOR_NAME).exists()
        assert not (online / MANIFEST_NAME).exists()

    def test_no_new_events_short_circuits(self, ctx, trained_model, tmp_path):
        registry, durable, wal_path, online, *_ = serving_setup(
            ctx, trained_model, tmp_path)
        report = retrain_once(
            registry, "m", wal_path=wal_path, online_dir=online,
            encoder=ctx.encoder, log=ctx.log, split=ctx.split, task=ctx.task)
        assert report.status == "no_new_events" and report.examples == 0

    def test_inspect_online_reads_cursor_and_manifest(self, tmp_path):
        assert inspect_online(tmp_path) == {
            "directory": str(tmp_path), "cursor": None, "retrain": None}
        lineage = ModelLineage(tmp_path, name="m")
        lineage.record(version(1))
        InteractionLogReader(tmp_path / WAL_NAME,
                             cursor_path=tmp_path / CURSOR_NAME
                             ).advance(LogCursor(seq=5, offset=99))
        doc = inspect_online(tmp_path)
        assert doc["cursor"]["seq"] == 5
        assert doc["retrain"]["active"] == "m@v1"


# --------------------------------------------------------------------------- #
# CLI surface: train metrics block, retrain, retrain --dry-run, status
# --------------------------------------------------------------------------- #
class TestOnlineCLI:
    @pytest.fixture
    def checkpoint(self, trained_model, tmp_path):
        from repro.core.serialization import save_seqfm

        path = tmp_path / "model.npz"
        save_seqfm(trained_model, path)
        return path

    @pytest.fixture
    def wal_dir(self, ctx, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        wal = WriteAheadLog(directory / WAL_NAME)
        for i, user in enumerate(ctx.encoder.known_users()[:3]):
            wal.append({"op": "record", "user": int(user), "fp": [0],
                        "stamp": float(i), "events": [1 + i, 2 + i]})
        wal.sync()
        wal.close()
        return directory

    def retrain_args(self, checkpoint, wal_dir, *extra):
        return ["retrain", "--dataset", "gowalla", "--scale", "quick",
                "--checkpoint", str(checkpoint), "--wal", str(wal_dir),
                "--gate-tolerance", "5.0", "--epochs", "1",
                *extra]

    def report_from(self, out):
        return json.loads(out.split("== retrain report ==", 1)[1])

    def test_train_prints_parseable_heldout_metrics(self, tmp_path, capsys):
        from repro.experiments.cli import main

        exit_code = main(["train", "--dataset", "gowalla", "--scale", "quick",
                          "--checkpoint", str(tmp_path / "m.npz"),
                          "--epochs", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        block = out.split("== held-out metrics ==", 1)[1].split("wrote", 1)[0]
        metrics = json.loads(block)
        assert set(metrics) >= {"HR@10", "NDCG@10"}
        assert all(isinstance(v, float) for v in metrics.values())

    def test_retrain_dry_run_prints_verdict_and_mutates_nothing(
            self, checkpoint, wal_dir, capsys):
        from repro.experiments.cli import main

        exit_code = main(self.retrain_args(checkpoint, wal_dir, "--dry-run"))
        assert exit_code == 0
        report = self.report_from(capsys.readouterr().out)
        assert report["status"] == "dry_run"
        assert report["gate"]["passed"] is True
        assert report["events"] == 6
        # nothing written: no online dir, no cursor, no manifest, no version
        assert not (wal_dir / "online").exists()

    def test_retrain_promotes_then_reruns_as_noop(self, checkpoint, wal_dir,
                                                  capsys):
        from repro.experiments.cli import main

        assert main(self.retrain_args(checkpoint, wal_dir)) == 0
        report = self.report_from(capsys.readouterr().out)
        assert report["status"] == "promoted" and report["tag"] == "default@v1"
        online = wal_dir / "online"
        assert (online / CURSOR_NAME).exists()
        assert (online / MANIFEST_NAME).exists()
        assert (online / "default@v1.npz").exists()

        # second invocation warm-starts from the promoted checkpoint and
        # finds nothing new behind the cursor
        assert main(self.retrain_args(checkpoint, wal_dir)) == 0
        captured = capsys.readouterr()
        rerun = self.report_from(captured.out)
        assert rerun["status"] == "no_new_events" and rerun["seeked"]
        assert "warm-starting from promoted default@v1" in captured.err

    def test_retrain_failing_gate_exits_2_and_writes_no_checkpoint(
            self, checkpoint, wal_dir, capsys):
        from repro.experiments.cli import main

        exit_code = main(["retrain", "--dataset", "gowalla", "--scale",
                          "quick", "--checkpoint", str(checkpoint),
                          "--wal", str(wal_dir),
                          "--gate-tolerance", "-5.0", "--epochs", "1"])
        assert exit_code == 2
        report = self.report_from(capsys.readouterr().out)
        assert report["status"] == "rejected" and report["gate"]["reasons"]
        online = wal_dir / "online"
        assert not (online / CURSOR_NAME).exists()  # cursor never advanced
        assert not any(online.glob("*.npz"))
        assert ModelLineage(online).active is None  # audit entry only

    def test_status_reports_the_online_block(self, checkpoint, wal_dir,
                                             capsys):
        from repro.experiments.cli import main

        assert main(self.retrain_args(checkpoint, wal_dir)) == 0
        capsys.readouterr()
        assert main(["status", "--wal", str(wal_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        online = payload["online"]
        assert online["retrain"]["active"] == "default@v1"
        assert online["cursor"]["seq"] == 3
