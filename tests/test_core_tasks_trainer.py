"""Tests for the task heads, the trainer and grid search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.grid_search import grid_search
from repro.core.model import SeqFM
from repro.core.tasks import (
    ClassificationTask,
    RankingTask,
    RegressionTask,
    SeqFMClassifier,
    SeqFMRanker,
    SeqFMRegressor,
    make_task_model,
)
from repro.core.trainer import Trainer, TrainerConfig
from repro.data.features import FeatureBatch
from repro.data.split import leave_one_out_split


@pytest.fixture
def ranking_batch(encoder, tiny_log, split):
    examples = encoder.encode_training_instances(split.train)
    return FeatureBatch.from_examples(examples[:6])


class TestTaskHeads:
    def test_make_task_model_dispatch(self, seqfm_config):
        scorer = SeqFM(seqfm_config)
        assert isinstance(make_task_model(scorer, "ranking"), RankingTask)
        assert isinstance(make_task_model(scorer, "classification"), ClassificationTask)
        assert isinstance(make_task_model(scorer, "regression"), RegressionTask)

    def test_make_task_model_unknown(self, seqfm_config):
        with pytest.raises(ValueError):
            make_task_model(SeqFM(seqfm_config), "clustering")

    def test_seqfm_aliases_build_seqfm(self, seqfm_config):
        assert isinstance(SeqFMRanker(seqfm_config).scorer, SeqFM)
        assert isinstance(SeqFMClassifier(seqfm_config).scorer, SeqFM)
        assert isinstance(SeqFMRegressor(seqfm_config).scorer, SeqFM)

    def test_ranking_loss_requires_negatives(self, seqfm_config, ranking_batch):
        task = SeqFMRanker(seqfm_config)
        with pytest.raises(ValueError):
            task.loss(ranking_batch)

    def test_ranking_loss_positive_scalar(self, seqfm_config, encoder, ranking_batch, sampler):
        task = SeqFMRanker(seqfm_config)
        negatives = sampler.sample_batch(ranking_batch.user_ids, ranking_batch.object_ids)
        negative_batch = ranking_batch.with_candidate(encoder, negatives)
        loss = task.loss(ranking_batch, negative_batch)
        assert loss.size == 1
        assert loss.item() > 0

    def test_classification_loss_with_and_without_negatives(self, seqfm_config, encoder,
                                                            ranking_batch, sampler):
        task = SeqFMClassifier(seqfm_config)
        loss_positive_only = task.loss(ranking_batch)
        negatives = sampler.sample_batch(ranking_batch.user_ids, ranking_batch.object_ids)
        negative_batch = ranking_batch.with_candidate(encoder, negatives)
        loss_with_negatives = task.loss(ranking_batch, negative_batch)
        assert loss_positive_only.item() > 0
        assert loss_with_negatives.item() > 0

    def test_classification_predict_probability_in_unit_interval(self, seqfm_config, ranking_batch):
        task = SeqFMClassifier(seqfm_config)
        probabilities = task.predict_probability(ranking_batch)
        assert np.all(probabilities > 0) and np.all(probabilities < 1)

    def test_regression_loss_matches_mse(self, seqfm_config, ranking_batch):
        task = SeqFMRegressor(seqfm_config)
        loss = task.loss(ranking_batch)
        predictions = task.predict(ranking_batch)
        expected = np.mean((predictions - ranking_batch.labels) ** 2)
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_regression_rejects_negative_batch(self, seqfm_config, encoder, ranking_batch, sampler):
        task = SeqFMRegressor(seqfm_config)
        negatives = sampler.sample_batch(ranking_batch.user_ids, ranking_batch.object_ids)
        with pytest.raises(ValueError):
            task.loss(ranking_batch, ranking_batch.with_candidate(encoder, negatives))


class TestTrainer:
    def _context(self, encoder, split, task):
        use_ratings = task == "regression"
        examples = encoder.encode_training_instances(split.train, use_ratings=use_ratings)
        return examples

    def test_ranking_training_reduces_loss(self, seqfm_config, encoder, split, sampler):
        task = SeqFMRanker(seqfm_config)
        examples = self._context(encoder, split, "ranking")
        trainer = Trainer(task, encoder, sampler,
                          TrainerConfig(epochs=5, batch_size=8, learning_rate=0.02, seed=0,
                                        convergence_tolerance=0.0))
        result = trainer.fit(examples)
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert result.epochs_run == 5
        assert result.train_seconds > 0

    def test_regression_training_reduces_loss(self, rating_log):
        from repro.data.features import FeatureEncoder
        split = leave_one_out_split(rating_log)
        encoder = FeatureEncoder(rating_log, max_seq_len=5)
        config = SeqFMConfig(
            static_vocab_size=encoder.static_vocab_size,
            dynamic_vocab_size=encoder.dynamic_vocab_size,
            max_seq_len=5, embed_dim=8, dropout=0.0, seed=0,
        )
        task = SeqFMRegressor(config)
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        trainer = Trainer(task, encoder, config=TrainerConfig(epochs=4, batch_size=16,
                                                              learning_rate=0.02,
                                                              convergence_tolerance=0.0))
        result = trainer.fit(examples)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_regression_bias_warm_start(self, rating_log):
        from repro.data.features import FeatureEncoder
        split = leave_one_out_split(rating_log)
        encoder = FeatureEncoder(rating_log, max_seq_len=5)
        config = SeqFMConfig(
            static_vocab_size=encoder.static_vocab_size,
            dynamic_vocab_size=encoder.dynamic_vocab_size,
            max_seq_len=5, embed_dim=8, dropout=0.0, seed=0,
        )
        task = SeqFMRegressor(config)
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        trainer = Trainer(task, encoder, config=TrainerConfig(epochs=1, batch_size=16))
        trainer.fit(examples)
        labels = np.array([example.label for example in examples])
        # After warm start + training, the bias should sit near the label mean.
        assert abs(task.scorer.global_bias.data[0] - labels.mean()) < 1.0

    def test_sampler_required_for_ranking(self, seqfm_config, encoder):
        with pytest.raises(ValueError):
            Trainer(SeqFMRanker(seqfm_config), encoder, sampler=None)

    def test_validation_callback_invoked(self, seqfm_config, encoder, split, sampler):
        task = SeqFMRanker(seqfm_config)
        examples = self._context(encoder, split, "ranking")
        calls = []

        def callback(model):
            calls.append(1)
            return {"checked": float(len(calls))}

        trainer = Trainer(task, encoder, sampler, TrainerConfig(epochs=2, batch_size=8,
                                                                convergence_tolerance=0.0))
        result = trainer.fit(examples, validation_callback=callback)
        assert len(result.validation_history) == 2
        assert result.validation_history[0]["checked"] == 1.0

    def test_early_convergence_stops(self, seqfm_config, encoder, split, sampler):
        task = SeqFMRanker(seqfm_config)
        examples = self._context(encoder, split, "ranking")
        trainer = Trainer(task, encoder, sampler,
                          TrainerConfig(epochs=20, batch_size=8, learning_rate=1e-9,
                                        convergence_tolerance=0.5))
        result = trainer.fit(examples)
        assert result.epochs_run < 20

    def test_model_left_in_eval_mode(self, seqfm_config, encoder, split, sampler):
        task = SeqFMRanker(seqfm_config)
        examples = self._context(encoder, split, "ranking")
        Trainer(task, encoder, sampler, TrainerConfig(epochs=1, batch_size=8)).fit(examples)
        assert not task.training


class TestFusedNegatives:
    """The fused (1+k)-candidate fast path must equal the looped path."""

    NUM_DRAWS = 5

    def _negatives(self, sampler, batch):
        return np.stack([
            sampler.sample_batch(batch.user_ids, batch.object_ids)
            for _ in range(self.NUM_DRAWS)
        ])

    @pytest.mark.parametrize("task_cls", [SeqFMRanker, SeqFMClassifier])
    def test_fused_loss_equals_looped_average(self, seqfm_config, encoder, ranking_batch,
                                              sampler, task_cls):
        task = task_cls(seqfm_config)  # dropout=0.0 in the fixture: deterministic
        negatives = self._negatives(sampler, ranking_batch)
        looped = sum(
            task.loss(ranking_batch,
                      ranking_batch.with_candidate(encoder, negatives[draw])).item()
            for draw in range(self.NUM_DRAWS)
        ) / self.NUM_DRAWS
        fused = task.fused_loss(
            ranking_batch.with_candidates(encoder, negatives),
            len(ranking_batch), self.NUM_DRAWS,
        ).item()
        assert fused == pytest.approx(looped, abs=1e-8)

    @pytest.mark.parametrize("task_cls,task", [(SeqFMRanker, "ranking"),
                                               (SeqFMClassifier, "classification")])
    def test_fused_trainer_epoch_losses_match_looped(self, seqfm_config, encoder, split,
                                                     sampler, task_cls, task, tiny_log):
        from repro.data.sampling import NegativeSampler

        examples = encoder.encode_training_instances(split.train)
        losses = {}
        for fused in (True, False):
            model = task_cls(seqfm_config)
            fresh_sampler = NegativeSampler(tiny_log, seed=0)
            trainer = Trainer(model, encoder, fresh_sampler,
                              TrainerConfig(epochs=3, batch_size=8, learning_rate=0.02,
                                            negatives_per_positive=self.NUM_DRAWS,
                                            convergence_tolerance=0.0, seed=0,
                                            fused_negatives=fused))
            losses[fused] = trainer.fit(examples).epoch_losses
        np.testing.assert_allclose(losses[True], losses[False], atol=1e-8)

    def test_fused_gradients_match_looped(self, seqfm_config, encoder, ranking_batch, sampler):
        """One fused backward accumulates the same gradients as k looped ones."""
        negatives = self._negatives(sampler, ranking_batch)
        gradients = {}
        for fused in (True, False):
            task = SeqFMRanker(seqfm_config)
            for parameter in task.parameters():
                parameter.zero_grad()
            if fused:
                loss = task.fused_loss(ranking_batch.with_candidates(encoder, negatives),
                                       len(ranking_batch), self.NUM_DRAWS)
            else:
                losses = [task.loss(ranking_batch,
                                    ranking_batch.with_candidate(encoder, negatives[d]))
                          for d in range(self.NUM_DRAWS)]
                loss = sum(losses[1:], losses[0]) * (1.0 / self.NUM_DRAWS)
            loss.backward()
            gradients[fused] = [parameter.grad.copy() for parameter in task.parameters()]
        for fused_grad, looped_grad in zip(gradients[True], gradients[False]):
            np.testing.assert_allclose(fused_grad, looped_grad, atol=1e-10)

    def test_fused_loss_rejects_bad_shapes(self, seqfm_config, ranking_batch, encoder, sampler):
        task = SeqFMRanker(seqfm_config)
        negatives = self._negatives(sampler, ranking_batch)
        fused = ranking_batch.with_candidates(encoder, negatives)
        with pytest.raises(ValueError):
            task.fused_loss(fused, len(ranking_batch), self.NUM_DRAWS + 1)
        with pytest.raises(ValueError):
            task.fused_loss(fused, len(ranking_batch), 0)

    def test_regression_has_no_fused_loss(self, seqfm_config, ranking_batch, encoder, sampler):
        task = SeqFMRegressor(seqfm_config)
        negatives = self._negatives(sampler, ranking_batch)
        fused = ranking_batch.with_candidates(encoder, negatives)
        with pytest.raises(NotImplementedError):
            task.fused_loss(fused, len(ranking_batch), self.NUM_DRAWS)


class TestTrainerStopping:
    def test_fit_without_examples_raises(self, seqfm_config, encoder, sampler):
        trainer = Trainer(SeqFMRanker(seqfm_config), encoder, sampler)
        with pytest.raises(ValueError, match="no training examples"):
            trainer.fit([])

    def test_convergence_records_reason(self, seqfm_config, encoder, split, sampler):
        examples = encoder.encode_training_instances(split.train)
        trainer = Trainer(SeqFMRanker(seqfm_config), encoder, sampler,
                          TrainerConfig(epochs=20, batch_size=8, learning_rate=1e-9,
                                        convergence_tolerance=0.5))
        result = trainer.fit(examples)
        assert result.stop_reason == "converged"
        assert result.epochs_run < 20

    def test_max_epochs_records_reason(self, seqfm_config, encoder, split, sampler):
        examples = encoder.encode_training_instances(split.train)
        trainer = Trainer(SeqFMRanker(seqfm_config), encoder, sampler,
                          TrainerConfig(epochs=2, batch_size=8,
                                        convergence_tolerance=0.0))
        result = trainer.fit(examples)
        assert result.stop_reason == "max_epochs"
        assert result.epochs_run == 2

    def test_divergence_stops_training(self, rating_log):
        """An exploding loss (huge learning rate) must stop the loop early."""
        from repro.data.features import FeatureEncoder
        split = leave_one_out_split(rating_log)
        encoder = FeatureEncoder(rating_log, max_seq_len=5)
        config = SeqFMConfig(
            static_vocab_size=encoder.static_vocab_size,
            dynamic_vocab_size=encoder.dynamic_vocab_size,
            max_seq_len=5, embed_dim=8, dropout=0.0, seed=0,
        )
        task = SeqFMRegressor(config)
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        trainer = Trainer(task, encoder,
                          config=TrainerConfig(epochs=50, batch_size=16, learning_rate=80.0,
                                               convergence_tolerance=1e-4,
                                               divergence_patience=3))
        result = trainer.fit(examples)
        assert result.stop_reason == "diverged"
        assert result.epochs_run < 50

    def test_plateau_noise_is_not_divergence(self, seqfm_config, encoder, split,
                                             sampler, monkeypatch):
        """Small consecutive upticks (above the convergence tolerance but far
        below the divergence tolerance) must not abort training."""
        examples = encoder.encode_training_instances(split.train)
        trainer = Trainer(SeqFMRanker(seqfm_config), encoder, sampler,
                          TrainerConfig(epochs=8, batch_size=8,
                                        convergence_tolerance=1e-4,
                                        divergence_tolerance=0.05,
                                        divergence_patience=3))
        losses = iter([0.4000, 0.4002, 0.4004, 0.4006, 0.4008,
                       0.4010, 0.4012, 0.4014])
        monkeypatch.setattr(trainer, "_run_epoch", lambda iterator: next(losses))
        result = trainer.fit(examples)
        assert result.stop_reason == "max_epochs"
        assert result.epochs_run == 8

    def test_zero_loss_does_not_disable_convergence_check(self, seqfm_config, encoder,
                                                          split, sampler, monkeypatch):
        """Regression: a zero epoch loss used to silently skip the check forever."""
        examples = encoder.encode_training_instances(split.train)
        trainer = Trainer(SeqFMRanker(seqfm_config), encoder, sampler,
                          TrainerConfig(epochs=10, batch_size=8,
                                        convergence_tolerance=1e-4))
        losses = iter([1.0, 0.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5])
        monkeypatch.setattr(trainer, "_run_epoch", lambda iterator: next(losses))
        result = trainer.fit(examples)
        # previous_loss == 0 skips one comparison but 0.5 -> 0.5 must converge.
        assert result.stop_reason == "converged"
        assert result.epochs_run == 4


class TestGridSearch:
    def test_finds_best_combination(self):
        def evaluate(params):
            # Best at embed_dim=32, layers=2.
            return -abs(params["embed_dim"] - 32) - abs(params["layers"] - 2)

        result = grid_search({"embed_dim": [8, 16, 32], "layers": [1, 2]}, evaluate)
        assert result.best_params == {"embed_dim": 32, "layers": 2}
        assert len(result.trials) == 6

    def test_minimise_mode(self):
        result = grid_search({"x": [1, 2, 3]}, lambda p: p["x"] ** 2, maximise=False)
        assert result.best_params == {"x": 1}

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search({}, lambda p: 0.0)
        with pytest.raises(ValueError):
            grid_search({"x": []}, lambda p: 0.0)

    def test_trials_record_every_combination(self):
        result = grid_search({"a": [1, 2], "b": [3, 4, 5]}, lambda p: p["a"] * p["b"])
        assert len(result.trials) == 6
        assert result.best_score == 10
