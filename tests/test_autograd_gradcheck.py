"""Tests for the finite-difference gradient checker itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_gradient


def test_numerical_gradient_of_quadratic():
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    grad = numerical_gradient(lambda ts: (ts[0] ** 2).sum(), [x], index=0)
    np.testing.assert_allclose(grad, 2 * x.data, atol=1e-5)


def test_check_gradients_passes_for_correct_op():
    x = Tensor(np.array([0.3, -1.2]), requires_grad=True)
    assert check_gradients(lambda ts: (ts[0] * 3).sum(), [x])


def test_check_gradients_detects_wrong_gradient():
    class BrokenTensor(Tensor):
        def double(self):
            out_data = self.data * 2.0

            def backward(grad):
                self._accumulate(grad * 3.0)  # wrong local gradient on purpose

            return Tensor._make(out_data, (self,), backward)

    x = BrokenTensor(np.array([1.0, 2.0]), requires_grad=True)
    with pytest.raises(AssertionError):
        check_gradients(lambda ts: ts[0].double().sum(), [x])


def test_check_gradients_requires_scalar_output():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    with pytest.raises(ValueError):
        check_gradients(lambda ts: ts[0] * 2, [x])


def test_check_gradients_skips_non_grad_inputs():
    x = Tensor(np.array([1.0]), requires_grad=True)
    constant = Tensor(np.array([2.0]), requires_grad=False)
    assert check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [x, constant])
