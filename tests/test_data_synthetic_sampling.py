"""Tests for the synthetic dataset generators, the dataset registry and the
negative sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic
from repro.data.datasets import DATASET_REGISTRY, dataset_statistics, load_dataset
from repro.data.sampling import NegativeSampler
from repro.data.synthetic import SyntheticConfig


class TestSyntheticGenerators:
    def test_poi_generator_shapes(self):
        config = SyntheticConfig(num_users=10, num_objects=20, interactions_per_user=8, seed=0)
        log = synthetic.generate_poi_checkins(config)
        assert len(log) == 10 * 8
        assert log.num_users() == 10
        assert max(log.objects) < 20

    def test_poi_generator_deterministic(self):
        config = SyntheticConfig(num_users=5, num_objects=10, interactions_per_user=6, seed=7)
        a = synthetic.generate_poi_checkins(config)
        b = synthetic.generate_poi_checkins(config)
        assert [(e.user_id, e.object_id) for e in a] == [(e.user_id, e.object_id) for e in b]

    def test_poi_generator_seed_changes_output(self):
        a = synthetic.generate_poi_checkins(SyntheticConfig(5, 10, 6, seed=1))
        b = synthetic.generate_poi_checkins(SyntheticConfig(5, 10, 6, seed=2))
        assert [(e.user_id, e.object_id) for e in a] != [(e.user_id, e.object_id) for e in b]

    def test_poi_sequential_structure_exists(self):
        """With high sequential strength, consecutive check-ins repeat clusters
        far more often than under an order-free shuffle of the same events."""
        config = SyntheticConfig(num_users=30, num_objects=60, interactions_per_user=30,
                                 seed=0, sequential_strength=0.95)
        log = synthetic.generate_poi_checkins(config, num_clusters=6)
        rng = np.random.default_rng(0)

        def repeat_rate(sequences):
            repeats, total = 0, 0
            for sequence in sequences:
                for previous, current in zip(sequence, sequence[1:]):
                    total += 1
                    repeats += int(previous == current)
            return repeats / max(total, 1)

        original = [[e.object_id for e in log.user_sequence(u)] for u in log.users]
        shuffled = [list(rng.permutation(seq)) for seq in original]
        # Compare transition predictability through a simpler proxy: the rate of
        # returning to a recently seen object within a window of 3.
        def recency_rate(sequences, window=3):
            hits, total = 0, 0
            for sequence in sequences:
                for position in range(1, len(sequence)):
                    total += 1
                    hits += int(sequence[position] in sequence[max(0, position - window):position])
            return hits / max(total, 1)

        assert recency_rate(original) >= recency_rate(shuffled) * 0.9
        assert repeat_rate(original) >= 0.0  # sanity: metric computed without error

    def test_ctr_generator_basic(self):
        config = SyntheticConfig(num_users=8, num_objects=30, interactions_per_user=10, seed=0)
        log = synthetic.generate_ctr_log(config)
        assert len(log) <= 8 * 10
        assert not log.has_ratings()

    def test_rating_generator_has_ratings_in_scale(self):
        config = SyntheticConfig(num_users=8, num_objects=20, interactions_per_user=10, seed=0)
        log = synthetic.generate_rating_log(config, rating_scale=(1.0, 5.0))
        assert log.has_ratings()
        ratings = [e.rating for e in log]
        assert min(ratings) >= 1.0
        assert max(ratings) <= 5.0

    def test_rating_sequential_strength_zero_removes_mood(self):
        base = SyntheticConfig(num_users=6, num_objects=15, interactions_per_user=8, seed=0,
                               sequential_strength=0.0)
        log = synthetic.generate_rating_log(base)
        assert log.has_ratings()

    def test_named_dataset_constructors(self):
        for constructor in (synthetic.gowalla_like, synthetic.foursquare_like,
                            synthetic.trivago_like, synthetic.taobao_like,
                            synthetic.beauty_like, synthetic.toys_like):
            log = constructor(num_users=12, num_objects=20, interactions_per_user=6)
            assert len(log) > 0
            assert log.name.endswith("-like")

    def test_popularity_is_power_law_like(self):
        config = SyntheticConfig(num_users=40, num_objects=50, interactions_per_user=20, seed=0)
        log = synthetic.generate_ctr_log(config)
        counts = {}
        for event in log:
            counts[event.object_id] = counts.get(event.object_id, 0) + 1
        sorted_counts = sorted(counts.values(), reverse=True)
        top_decile = sum(sorted_counts[: max(1, len(sorted_counts) // 10)])
        assert top_decile / sum(sorted_counts) > 0.15  # popular head carries real mass


class TestDatasetRegistry:
    def test_registry_contains_the_six_paper_datasets(self):
        assert set(DATASET_REGISTRY) == {"gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"}

    def test_load_dataset_filters_and_sorts(self):
        log = load_dataset("beauty")
        timestamps = [event.timestamp for event in log]
        assert timestamps == sorted(timestamps)
        assert len(log) > 0

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_dataset_statistics_columns(self, tiny_log):
        stats = dataset_statistics(tiny_log)
        assert set(stats) == {"instances", "users", "objects", "features", "max_seq_len"}
        assert stats["features"] == stats["users"] + 2 * stats["objects"] + 1

    def test_tasks_cover_three_settings(self):
        tasks = {spec.task for spec in DATASET_REGISTRY.values()}
        assert tasks == {"ranking", "classification", "regression"}


class TestNegativeSampler:
    def test_sample_for_user_avoids_seen(self, tiny_log):
        sampler = NegativeSampler(tiny_log, seed=0)
        # User 0 has seen every object; the sampler must still return something.
        negatives = sampler.sample_for_user(0, 3)
        assert negatives.shape == (3,)

    def test_sample_for_user_unseen_only(self):
        from repro.data.interactions import Interaction, InteractionLog
        log = InteractionLog()
        for object_id in range(5):
            log.append(Interaction(0, object_id, float(object_id)))
        log.append(Interaction(1, 0, 10.0))
        sampler = NegativeSampler(log, objects=range(10), seed=0)
        negatives = sampler.sample_for_user(0, 50)
        assert set(negatives.tolist()) <= {5, 6, 7, 8, 9}

    def test_sample_batch_avoids_positive(self, tiny_log):
        sampler = NegativeSampler(tiny_log, objects=range(10, 30), seed=0)
        user_ids = np.array([0, 1, 2])
        positives = np.array([10, 11, 12])
        negatives = sampler.sample_batch(user_ids, positives)
        assert negatives.shape == (3,)
        assert not np.any(negatives == positives) or len(set(range(10, 30)) - tiny_log.objects) == 0

    def test_sample_batch_never_returns_seen_objects(self, tiny_log):
        """The vectorised rejection sampler must respect every seen set."""
        sampler = NegativeSampler(tiny_log, objects=range(10, 30), seed=0)
        user_ids = np.tile(np.array(sorted(tiny_log.users)), 50)
        positives = np.tile(np.array([10, 11, 12, 13]), 50)
        negatives = sampler.sample_batch(user_ids, positives)
        assert not np.any(negatives == positives)
        for user_id, negative in zip(user_ids, negatives):
            assert int(negative) not in sampler.seen(int(user_id))

    def test_sample_batch_dense_user_falls_back_to_exact(self):
        """A user who has seen all but one object still gets that object."""
        from repro.data.interactions import Interaction, InteractionLog
        log = InteractionLog()
        for object_id in range(9):  # user 0 saw objects 0..8 of universe 0..9
            log.append(Interaction(0, object_id, float(object_id)))
        sampler = NegativeSampler(log, objects=range(10), seed=0)
        negatives = sampler.sample_batch(np.zeros(20, dtype=np.int64),
                                         np.zeros(20, dtype=np.int64))
        assert set(negatives.tolist()) == {9}

    def test_sample_batch_sees_mark_seen_updates(self, tiny_log):
        """mark_seen after the first draw must invalidate the seen index."""
        sampler = NegativeSampler(tiny_log, objects=range(10, 30), seed=0)
        sampler.sample_batch(np.array([0]), np.array([10]))  # build the index
        for object_id in range(16, 26):
            sampler.mark_seen(0, object_id)  # user 0 now saw 10..25; 26..29 remain
        negatives = sampler.sample_batch(np.zeros(100, dtype=np.int64),
                                         np.full(100, 10, dtype=np.int64))
        assert set(negatives.tolist()) <= {26, 27, 28, 29}

    def test_sample_batch_unknown_user_draws_freely(self, tiny_log):
        sampler = NegativeSampler(tiny_log, objects=range(10, 30), seed=0)
        negatives = sampler.sample_batch(np.full(40, 999, dtype=np.int64),
                                         np.full(40, 10, dtype=np.int64))
        assert negatives.shape == (40,)
        assert not np.any(negatives == 10)
        assert np.all((negatives >= 10) & (negatives < 30))

    def test_evaluation_candidates_structure(self, tiny_log):
        sampler = NegativeSampler(tiny_log, objects=range(10, 40), seed=0)
        candidates = sampler.evaluation_candidates(0, ground_truth=12, num_negatives=5)
        assert candidates[0] == 12
        assert len(candidates) == 6
        assert 12 not in candidates[1:]

    def test_mark_seen_extends_seen_set(self, tiny_log):
        sampler = NegativeSampler(tiny_log, objects=range(10, 40), seed=0)
        sampler.mark_seen(0, 39)
        assert 39 in sampler.seen(0)

    def test_sampling_is_seeded(self, tiny_log):
        a = NegativeSampler(tiny_log, seed=5).sample_for_user(0, 4)
        b = NegativeSampler(tiny_log, seed=5).sample_for_user(0, 4)
        np.testing.assert_array_equal(a, b)

    def test_invalid_count(self, tiny_log):
        sampler = NegativeSampler(tiny_log, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_for_user(0, 0)

    def test_empty_universe_rejected(self):
        from repro.data.interactions import InteractionLog
        with pytest.raises(ValueError):
            NegativeSampler(InteractionLog(), objects=[], seed=0)
