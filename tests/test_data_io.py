"""Tests for dataset I/O: the native CSV/JSONL round-trip and the loaders for
the real public dataset formats."""

from __future__ import annotations

import pytest

from repro.data import io


class TestCsvRoundTrip:
    def test_roundtrip_preserves_everything(self, tiny_log, tmp_path):
        path = tmp_path / "log.csv"
        io.save_csv(tiny_log, path)
        loaded = io.load_csv(path, name=tiny_log.name)
        assert len(loaded) == len(tiny_log)
        for original, restored in zip(tiny_log, loaded):
            assert original.user_id == restored.user_id
            assert original.object_id == restored.object_id
            assert original.timestamp == pytest.approx(restored.timestamp)
            assert original.rating == pytest.approx(restored.rating)

    def test_roundtrip_without_ratings(self, poi_log, tmp_path):
        path = tmp_path / "poi.csv"
        io.save_csv(poi_log, path)
        loaded = io.load_csv(path)
        assert not loaded.has_ratings()
        assert len(loaded) == len(poi_log)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user_id,timestamp\n1,2.0\n")
        with pytest.raises(ValueError):
            io.load_csv(path)

    def test_creates_parent_directories(self, tiny_log, tmp_path):
        path = tmp_path / "nested" / "deep" / "log.csv"
        io.save_csv(tiny_log, path)
        assert path.exists()

    def test_name_defaults_to_stem(self, tiny_log, tmp_path):
        path = tmp_path / "mydata.csv"
        io.save_csv(tiny_log, path)
        assert io.load_csv(path).name == "mydata"


class TestJsonlRoundTrip:
    def test_roundtrip(self, tiny_log, tmp_path):
        path = tmp_path / "log.jsonl"
        io.save_jsonl(tiny_log, path)
        loaded = io.load_jsonl(path)
        assert len(loaded) == len(tiny_log)
        assert loaded.has_ratings() == tiny_log.has_ratings()

    def test_rating_key_omitted_for_implicit_logs(self, poi_log, tmp_path):
        path = tmp_path / "poi.jsonl"
        io.save_jsonl(poi_log, path)
        assert '"rating"' not in path.read_text()

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('{"user_id": 1, "object_id": 2, "timestamp": 3.0}\n\n')
        assert len(io.load_jsonl(path)) == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"user_id": 1, "object_id": 2, "timestamp": 3.0}\nnot-json\n')
        with pytest.raises(ValueError, match=":2"):
            io.load_jsonl(path)


class TestRealDatasetLoaders:
    def test_gowalla_format(self, tmp_path):
        path = tmp_path / "loc-gowalla_totalCheckins.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t30.23\t-97.79\t22847\n"
            "0\t2010-10-18T22:17:43Z\t30.26\t-97.76\t420315\n"
            "1\t2010-10-17T23:42:03Z\t30.25\t-97.75\t316637\n"
            "malformed line without enough fields\n"
        )
        log = io.load_gowalla_checkins(path)
        assert len(log) == 3
        assert log.users == {0, 1}
        assert 22847 in log.objects
        # Chronological order recoverable from the parsed timestamps.
        sequence = log.user_sequence(0)
        assert sequence[0].object_id == 420315

    def test_gowalla_max_rows(self, tmp_path):
        path = tmp_path / "gowalla.txt"
        rows = "\n".join(
            f"{user}\t2010-10-19T23:55:2{user}Z\t0\t0\t{100 + user}" for user in range(5)
        )
        path.write_text(rows + "\n")
        assert len(io.load_gowalla_checkins(path, max_rows=2)) == 2

    def test_foursquare_format(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "470\t49bbd6c0f964a520f4531fe3\tTue Apr 03 18:00:09 +0000 2012\t-240\n"
            "470\t4a43c0aef964a520c6a61fe3\tTue Apr 03 18:10:09 +0000 2012\t-240\n"
            "979\t49bbd6c0f964a520f4531fe3\tTue Apr 03 18:20:09 +0000 2012\t-240\n"
        )
        log = io.load_foursquare_checkins(path)
        assert len(log) == 3
        assert log.num_users() == 2
        # The same venue string maps to the same dense id.
        assert log.user_sequence(470)[0].object_id == log.user_sequence(979)[0].object_id

    def test_amazon_ratings_format(self, tmp_path):
        path = tmp_path / "ratings_Beauty.csv"
        path.write_text(
            "A39HTATAQ9V7YF,0205616461,5.0,1369699200\n"
            "A3JM6GV9MNOF9X,0558925278,3.0,1355443200\n"
            "A39HTATAQ9V7YF,0558925278,4.0,1355529600\n"
            "user,item,rating,timestamp\n"  # header-like malformed row is skipped
        )
        log = io.load_amazon_ratings(path)
        assert len(log) == 3
        assert log.has_ratings()
        assert log.num_users() == 2
        assert log.num_objects() == 2
        ratings = sorted(event.rating for event in log)
        assert ratings == [3.0, 4.0, 5.0]

    def test_loaded_log_flows_through_pipeline(self, tmp_path):
        """A loaded real-format log must work with the standard pipeline."""
        from repro.data.features import FeatureEncoder
        from repro.data.split import leave_one_out_split

        path = tmp_path / "ratings.csv"
        rows = []
        for user in range(3):
            for step in range(5):
                rows.append(f"U{user},I{step},{(step % 5) + 1}.0,{1000 + step}")
        path.write_text("\n".join(rows) + "\n")
        log = io.load_amazon_ratings(path)
        split = leave_one_out_split(log)
        encoder = FeatureEncoder(log, max_seq_len=4)
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        assert len(examples) > 0
