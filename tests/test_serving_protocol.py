"""Tests for the serving protocol: envelopes, the head registry, structured
errors, the stateful update head, per-request model routing and the
golden-file wire-format contract."""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.serving import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    HeadRegistry,
    ModelRegistry,
    ProtocolError,
    ServeDefaults,
    ServingRouter,
    UserSequenceStore,
    default_heads,
    parse_envelope,
    predict_batch,
    rank_topk_batch,
    recommend_batch,
    serve_jsonl,
)
from repro.serving.protocol import (
    ERR_BAD_ENVELOPE,
    ERR_BAD_JSON,
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_HEAD,
    ERR_UNKNOWN_MODEL,
    ERR_UNSUPPORTED_VERSION,
    ScoringHead,
)

CONFIG = SeqFMConfig(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=6,
                     embed_dim=8, dropout=0.0, seed=5)

#: Static-vocabulary catalog the recommend head serves (users are 0..9).
CATALOG = list(range(10, 40))

DATA_DIR = Path(__file__).resolve().parent / "data"
GOLDEN_INPUT = DATA_DIR / "serve_golden.jsonl"
GOLDEN_EXPECTED = DATA_DIR / "serve_golden.expected.jsonl"


def make_model(seed: int) -> SeqFM:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(seed)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.2, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


def make_registry(cache_capacity: int = 4096) -> ModelRegistry:
    """Two deterministic models; 'golden' carries an item index."""
    registry = ModelRegistry(cache_capacity=cache_capacity)
    registry.register("golden", make_model(2))
    registry.register("alt", make_model(3))
    registry.build_index("golden", CATALOG, n_retrieve=len(CATALOG))
    return registry


@pytest.fixture
def registry() -> ModelRegistry:
    return make_registry()


def serve_lines(registry, lines, head="score", model="golden", **kwargs):
    """Run serve_jsonl over ``lines``; returns (summary, parsed responses)."""
    output = io.StringIO()
    summary = serve_jsonl(registry, model, io.StringIO("\n".join(lines) + "\n"),
                          output, head=head, **kwargs)
    return summary, [json.loads(line) for line in output.getvalue().splitlines()]


SCORE_PAYLOAD = {"static_indices": [1, 20], "history": [1, 2], "user_id": 1}


# --------------------------------------------------------------------------- #
# Envelope parsing
# --------------------------------------------------------------------------- #
class TestEnvelope:
    def test_bare_dict_auto_upgrades(self):
        envelope = parse_envelope(SCORE_PAYLOAD, default_head="classify",
                                  default_model="m")
        assert envelope.legacy and not envelope.batched
        assert envelope.head == "classify" and envelope.model == "m"
        assert envelope.payloads == (SCORE_PAYLOAD,)

    def test_bare_list_auto_upgrades_batched(self):
        envelope = parse_envelope([SCORE_PAYLOAD, SCORE_PAYLOAD],
                                  default_head="score")
        assert envelope.legacy and envelope.batched
        assert len(envelope.payloads) == 2

    def test_v1_single_payload(self):
        envelope = parse_envelope(
            {"v": 1, "head": "rank-topk", "model": "b", "id": 7,
             "payload": SCORE_PAYLOAD},
            default_head="score", default_model="a")
        assert not envelope.legacy and not envelope.batched
        assert envelope.head == "rank-topk" and envelope.model == "b"
        assert envelope.request_id == 7
        assert envelope.v == PROTOCOL_VERSION

    def test_v1_defaults_apply(self):
        envelope = parse_envelope({"v": 1, "payload": SCORE_PAYLOAD},
                                  default_head="regress", default_model="m")
        assert envelope.head == "regress" and envelope.model == "m"

    def test_v1_list_payload(self):
        envelope = parse_envelope({"v": 1, "payload": [SCORE_PAYLOAD]},
                                  default_head="score")
        assert envelope.batched and len(envelope.payloads) == 1

    @pytest.mark.parametrize("version", [0, 2, "1", 1.5, True])
    def test_unknown_versions_rejected(self, version):
        with pytest.raises(ProtocolError) as excinfo:
            parse_envelope({"v": version, "payload": SCORE_PAYLOAD})
        assert excinfo.value.code == ERR_UNSUPPORTED_VERSION

    @pytest.mark.parametrize("document, code", [
        ("not an object", ERR_BAD_ENVELOPE),
        (17, ERR_BAD_ENVELOPE),
        ({"v": 1}, ERR_BAD_ENVELOPE),                        # missing payload
        ({"v": 1, "payload": 3}, ERR_BAD_ENVELOPE),          # scalar payload
        ({"v": 1, "head": 9, "payload": {}}, ERR_BAD_ENVELOPE),
        ({"v": 1, "model": 9, "payload": {}}, ERR_BAD_ENVELOPE),
        ({"v": 1, "haed": "score", "payload": {}}, ERR_BAD_ENVELOPE),  # typo field
        ({"v": 1, "payload": [{}, 3]}, ERR_BAD_REQUEST),     # non-object element
        ([{"static_indices": [1]}, "x"], ERR_BAD_REQUEST),
        # routing keys without 'payload' are an envelope attempt, never a
        # silent legacy mis-route to the default head
        ({"head": "classify", "static_indices": [1, 2]}, ERR_BAD_ENVELOPE),
        ({"model": "other", "static_indices": [1, 2]}, ERR_BAD_ENVELOPE),
    ])
    def test_malformed_envelopes(self, document, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_envelope(document)
        assert excinfo.value.code == code

    def test_v0_payload_with_extra_id_key_still_serves(self):
        """'id' was plausible client metadata on v0 payloads (unknown keys
        were always ignored), so it must not trip envelope detection."""
        envelope = parse_envelope({"id": 7, **SCORE_PAYLOAD}, "score", "m")
        assert envelope.legacy and envelope.payloads[0]["id"] == 7

    def test_error_codes_are_stable(self):
        assert ERROR_CODES == ("bad_json", "bad_envelope", "unsupported_version",
                               "unknown_head", "unknown_model", "bad_request",
                               "execution_error", "overloaded", "timeout",
                               "retryable")


# --------------------------------------------------------------------------- #
# Head registry
# --------------------------------------------------------------------------- #
class TestHeadRegistry:
    def test_default_heads(self):
        names = default_heads().names()
        assert names == ("score", "rank", "classify", "regress", "rank-topk",
                         "recommend", "update", "status")

    def test_unknown_head_has_stable_code(self):
        with pytest.raises(ProtocolError) as excinfo:
            default_heads().get("frobnicate")
        assert excinfo.value.code == ERR_UNKNOWN_HEAD

    def test_duplicate_registration_guard(self):
        heads = HeadRegistry([ScoringHead("score", "score")])
        with pytest.raises(ValueError, match="already registered"):
            heads.register(ScoringHead("score", "classify"))
        heads.register(ScoringHead("score", "classify"), overwrite=True)
        assert len(heads) == 1

    def test_custom_head_serves_through_every_front_end(self, registry):
        """A new head is one registration — no front-end surgery."""

        class NegateHead(ScoringHead):
            def execute(self, batcher, requests):
                return [-float(s) for s in batcher.score_all(requests)]

        heads = HeadRegistry([ScoringHead("score", "score"),
                              # repro: allow[protocol-completeness] — test-local head
                              NegateHead("negate", "score")])
        plain = registry.get("golden").batcher(heads=heads)
        base = float(plain.score_all(
            [default_heads().get("score").parse(SCORE_PAYLOAD, ServeDefaults())])[0])
        output = io.StringIO()
        line = json.dumps({"v": 1, "head": "negate", "payload": SCORE_PAYLOAD})
        serve_jsonl(registry, "golden", io.StringIO(line + "\n"), output,
                    heads=heads)
        response = json.loads(output.getvalue())
        assert response["head"] == "negate"
        assert response["result"]["score"] == pytest.approx(-base)


# --------------------------------------------------------------------------- #
# Malformed requests, one parametrized sweep over every registered head
# --------------------------------------------------------------------------- #
#: Per-head payloads that must fail validation with ``bad_request``.
MALFORMED_PAYLOADS = {
    "score": [{}, {"static_indices": 3}, {"static_indices": [1, "x"]},
              {"static_indices": [1, 2], "user_id": []},
              {"static_indices": [1, 2], "history": 7}],
    "rank": [{}, {"static_indices": "nope"}],
    "classify": [{}, {"static_indices": {"a": 1}}],
    "regress": [{}, {"static_indices": [1, 2], "object_id": [3]}],
    "rank-topk": [{}, {"static_indices": [1, 0]},                  # no candidates
                  {"candidates": [10]},                            # no profile
                  {"static_indices": [1, 0], "candidates": []},    # empty list
                  {"static_indices": [1, 0], "candidates": [10], "k": 0},
                  {"static_indices": [1, 0], "candidates": [10], "k": "many"}],
    "recommend": [{}, {"history": [1, 2]},
                  {"static_indices": [1, 0], "k": 0},
                  {"static_indices": [1, 0], "n_retrieve": 0}],
    "update": [{}, {"user_id": 4}, {"events": [3]},
               {"user_id": -1, "events": [3]},
               {"user_id": 4, "events": []},
               {"user_id": 4, "events": 3}],
}


class TestMalformedRequests:
    @pytest.mark.parametrize("head", list(MALFORMED_PAYLOADS))
    def test_bad_payloads_get_structured_errors(self, registry, head):
        assert head in default_heads()
        lines = [json.dumps({"v": 1, "head": head, "payload": payload})
                 for payload in MALFORMED_PAYLOADS[head]]
        summary, responses = serve_lines(registry, lines)
        assert summary.errors == len(lines) == summary.lines
        assert summary.error_codes == {ERR_BAD_REQUEST: len(lines)}
        for number, response in enumerate(responses, start=1):
            assert response["error"]["code"] == ERR_BAD_REQUEST
            assert response["error"]["line"] == number

    def test_unknown_head_and_model_per_line(self, registry):
        lines = [
            json.dumps({"v": 1, "head": "frobnicate", "payload": SCORE_PAYLOAD}),
            json.dumps({"v": 1, "model": "missing", "payload": SCORE_PAYLOAD}),
            json.dumps(SCORE_PAYLOAD),   # the stream keeps serving afterwards
        ]
        summary, responses = serve_lines(registry, lines)
        assert responses[0]["error"]["code"] == ERR_UNKNOWN_HEAD
        assert responses[1]["error"]["code"] == ERR_UNKNOWN_MODEL
        assert "scores" in responses[2]
        assert summary.errors == 2 and summary.served == 1

    def test_error_lines_echo_the_request_id(self, registry):
        line = json.dumps({"v": 1, "id": "req-9", "head": "rank-topk",
                           "payload": {"static_indices": [1], "candidates": [],
                                       "k": 1}})
        _, responses = serve_lines(registry, [line])
        assert responses[0]["error"]["id"] == "req-9"
        assert responses[0]["error"]["line"] == 1

    def test_line_numbers_count_physical_lines(self, registry):
        lines = [json.dumps(SCORE_PAYLOAD), "", "   ", "broken json"]
        summary, responses = serve_lines(registry, lines)
        assert summary.lines == 2          # blanks ignored...
        assert responses[1]["error"]["line"] == 4   # ...but still numbered
        assert responses[1]["error"]["code"] == ERR_BAD_JSON
        assert summary.error_codes == {ERR_BAD_JSON: 1}


# --------------------------------------------------------------------------- #
# v0 → v1 auto-upgrade and response shapes
# --------------------------------------------------------------------------- #
class TestAutoUpgrade:
    def test_v0_and_v1_score_identically(self, registry):
        v0 = json.dumps(SCORE_PAYLOAD)
        v1 = json.dumps({"v": 1, "payload": SCORE_PAYLOAD})
        _, responses = serve_lines(registry, [v0, v1])
        legacy, enveloped = responses
        assert legacy == {"scores": [enveloped["result"]["score"]]}
        assert enveloped["v"] == 1 and enveloped["head"] == "score"
        assert enveloped["model"] == "golden"
        assert "id" not in enveloped

    def test_v0_list_and_v1_batched_payload(self, registry):
        payloads = [SCORE_PAYLOAD, {"static_indices": [2, 21]}]
        _, responses = serve_lines(registry, [
            json.dumps(payloads),
            json.dumps({"v": 1, "id": 3, "payload": payloads}),
        ])
        legacy, enveloped = responses
        assert enveloped["id"] == 3
        assert legacy["scores"] == [r["score"] for r in enveloped["results"]]

    def test_v0_rank_topk_shapes_preserved(self, registry):
        request = {"static_indices": [1, 0], "candidates": [10, 11, 12], "k": 2}
        summary, responses = serve_lines(registry, [
            json.dumps(request), json.dumps([request])], head="rank-topk")
        assert set(responses[0]) == {"candidates", "scores"}
        assert responses[1] == {"results": [responses[0]]}
        assert summary.rows == 4

    def test_explicit_null_history_reads_stored_sequence_in_v0(self, registry):
        store = registry.get("golden").sequence_store
        store.record(8, [4, 5])
        explicit = {"static_indices": [8, 20], "history": [4, 5], "user_id": 8}
        stored = {"static_indices": [8, 20], "history": None, "user_id": 8}
        _, responses = serve_lines(registry, [json.dumps(explicit),
                                              json.dumps(stored)])
        assert responses[0]["scores"] == responses[1]["scores"]

    def test_v0_missing_history_still_means_empty(self, registry):
        """Auto-upgrade must not change what pre-envelope clients get back."""
        store = registry.get("golden").sequence_store
        store.record(8, [4, 5])
        bare = {"static_indices": [8, 20], "user_id": 8}
        empty = {"static_indices": [8, 20], "history": [], "user_id": 8}
        _, responses = serve_lines(registry, [json.dumps(bare), json.dumps(empty)])
        assert responses[0]["scores"] == responses[1]["scores"]


# --------------------------------------------------------------------------- #
# The stateful update head
# --------------------------------------------------------------------------- #
class TestUpdateHead:
    def recommend_line(self, user_id, history="omitted"):
        payload = {"static_indices": [user_id, 0], "user_id": user_id, "k": 3}
        if history != "omitted":
            payload["history"] = history
        return json.dumps({"v": 1, "head": "recommend", "payload": payload})

    def update_line(self, user_id, events):
        return json.dumps({"v": 1, "head": "update",
                           "payload": {"user_id": user_id, "events": events}})

    def test_online_loop_recommend_update_recommend(self, registry):
        """recommend → the user clicks → update → the next recommend that
        omits its history is answered against the updated sequence."""
        _, responses = serve_lines(registry, [
            self.recommend_line(4, history=[1, 2]),
            self.update_line(4, [7]),
            self.recommend_line(4),                       # stored: [1, 2, 7]
            self.recommend_line(4, history=[1, 2, 7]),    # explicit oracle
        ])
        assert responses[1]["result"] == {"user_id": 4, "appended": 1,
                                          "history_len": 3}
        assert responses[2]["result"] == responses[3]["result"]
        # and the updated sequence actually changes the answer state
        assert registry.get("golden").sequence_store.history(4) == (1, 2, 7)

    def test_update_creates_state_for_cold_users(self, registry):
        summary, responses = serve_lines(registry, [self.update_line(9, [3, 4, 5])])
        assert responses[0]["result"]["history_len"] == 3
        assert summary.rows == 3   # one row per appended event
        assert registry.get("golden").sequence_store.history(9) == (3, 4, 5)

    def test_update_truncates_to_visible_suffix(self, registry):
        events = list(range(1, 10))   # longer than max_seq_len=6
        _, responses = serve_lines(registry, [self.update_line(2, events)])
        assert responses[0]["result"]["history_len"] == CONFIG.max_seq_len
        assert registry.get("golden").sequence_store.history(2) == \
            tuple(events[-CONFIG.max_seq_len:])

    def test_eviction_clears_server_side_state(self):
        registry = make_registry(cache_capacity=1)
        store = registry.get("golden").sequence_store
        serve_lines(registry, [self.update_line(1, [5])])
        store.encode(2, [8])                 # capacity 1: evicts user 1
        assert store.history(1) is None
        _, responses = serve_lines(registry, [
            self.recommend_line(1),                 # cold again: empty history
            self.recommend_line(1, history=[]),
        ])
        assert responses[0]["result"] == responses[1]["result"]

    def test_cold_stored_reads_do_not_seed_or_evict(self):
        """A sweep of history-omitting reads for unseen users must not push
        warm users' accumulated update-head state out of the LRU store."""
        registry = make_registry(cache_capacity=2)
        store = registry.get("golden").sequence_store
        serve_lines(registry, [self.update_line(1, [5])])
        serve_lines(registry, [self.recommend_line(user) for user in range(2, 8)])
        assert store.history(1) == (5,)                  # still resident
        assert all(user not in store for user in range(2, 8))

    def test_ttl_expires_stored_sequences(self):
        clock = {"now": 0.0}
        store = UserSequenceStore(max_seq_len=4, capacity=8, ttl=10.0,
                                  clock=lambda: clock["now"])
        store.record(1, [3, 4])
        assert store.history(1) == (3, 4)
        clock["now"] = 9.0
        assert store.history(1) == (3, 4)     # still fresh
        clock["now"] = 20.1
        assert store.history(1) is None       # expired
        assert 1 not in store
        assert store.stats.evictions == 1

    def test_record_refreshes_ttl(self):
        clock = {"now": 0.0}
        store = UserSequenceStore(max_seq_len=4, capacity=8, ttl=10.0,
                                  clock=lambda: clock["now"])
        store.record(1, [3])
        clock["now"] = 8.0
        store.record(1, [4])                  # re-stamps the entry
        clock["now"] = 17.0
        assert store.history(1) == (3, 4)     # 9s since last write
        with pytest.raises(ValueError):
            UserSequenceStore(max_seq_len=4, ttl=0.0)

    def test_registry_cache_ttl_reaches_the_store(self):
        clock = {"now": 0.0}
        registry = ModelRegistry(cache_ttl=10.0)
        registry.register("m", make_model(2))
        store = registry.get("m").sequence_store
        assert store.ttl == 10.0
        store._clock = lambda: clock["now"]    # pin time for determinism
        registry.serve("m", [{"user_id": 1, "events": [3]}], head="update")
        clock["now"] = 20.1
        assert store.history(1) is None        # expired server-side state

    def test_update_batch_endpoint_and_stats(self, registry):
        response = registry.serve("golden", [
            {"user_id": 1, "events": [2, 3]},
            {"user_id": 2, "events": [4]},
        ], head="update")
        assert response["head"] == "update"
        assert response["stats"]["events_appended"] == 3
        assert response["stats"]["requests"] == 2
        assert response["stats"]["users_resident"] >= 2


# --------------------------------------------------------------------------- #
# Per-request model routing
# --------------------------------------------------------------------------- #
class TestModelRouting:
    def test_mixed_stream_routes_per_model(self, registry):
        line_a = json.dumps({"v": 1, "model": "golden", "payload": SCORE_PAYLOAD})
        line_b = json.dumps({"v": 1, "model": "alt", "payload": SCORE_PAYLOAD})
        _, responses = serve_lines(registry, [line_a, line_b, line_a])
        score_a = registry.serve("golden", [SCORE_PAYLOAD])["scores"][0]
        score_b = registry.serve("alt", [SCORE_PAYLOAD])["scores"][0]
        assert responses[0]["result"]["score"] == score_a
        assert responses[1]["result"]["score"] == score_b
        assert responses[2]["result"]["score"] == score_a
        assert score_a != score_b            # genuinely different models
        assert responses[0]["model"] == "golden" and responses[1]["model"] == "alt"

    def test_router_reuses_one_batcher_per_group(self, registry):
        router = ServingRouter(registry, default_model="golden")
        for envelope in [
            parse_envelope({"v": 1, "payload": SCORE_PAYLOAD}, "score", "golden"),
            parse_envelope({"v": 1, "model": "alt", "payload": SCORE_PAYLOAD},
                           "score", "golden"),
            parse_envelope({"v": 1, "head": "classify", "payload": SCORE_PAYLOAD},
                           "score", "golden"),
            parse_envelope({"v": 1, "payload": SCORE_PAYLOAD}, "score", "golden"),
        ]:
            router.execute(envelope)
        assert set(router._batchers) == {("golden", "score"), ("alt", "score"),
                                         ("golden", "classify")}
        _, first = router.batcher_for("golden", "score")
        _, again = router.batcher_for("golden", "score")
        assert first is again
        assert first.stats.requests == 2     # both default-route envelopes

    def test_router_drops_stale_batchers_on_model_replacement(self, registry):
        router = ServingRouter(registry, default_model="golden")
        envelope = parse_envelope({"v": 1, "payload": SCORE_PAYLOAD},
                                  "score", "golden")
        before, _, _ = router.execute(envelope)
        _, old_batcher = router.batcher_for("golden", "score")
        registry.register("golden", make_model(3), overwrite=True)  # == "alt"
        after, _, _ = router.execute(envelope)
        _, new_batcher = router.batcher_for("golden", "score")
        assert new_batcher is not old_batcher
        oracle = make_registry().serve("alt", [SCORE_PAYLOAD])["scores"][0]
        assert after["result"]["score"] == oracle
        assert before["result"]["score"] != after["result"]["score"]

    def test_router_rebuilds_when_retriever_swapped(self, registry):
        router = ServingRouter(registry, default_model="golden")
        _, old_batcher = router.batcher_for("golden", "recommend")
        registry.build_index("golden", CATALOG[:10], n_retrieve=10)  # new index
        entry, new_batcher = router.batcher_for("golden", "recommend")
        assert new_batcher is not old_batcher
        assert new_batcher.recommend_fn == entry.retriever.retrieve_then_rank

    def test_mixed_heads_in_one_stream(self, registry):
        lines = [
            json.dumps({"v": 1, "head": "classify", "payload": SCORE_PAYLOAD}),
            json.dumps({"v": 1, "head": "rank-topk",
                        "payload": {"static_indices": [1, 0],
                                    "candidates": [10, 11], "k": 1}}),
            json.dumps({"v": 1, "head": "recommend",
                        "payload": {"static_indices": [1, 0], "k": 2,
                                    "history": [1]}}),
        ]
        summary, responses = serve_lines(registry, lines)
        assert 0.0 < responses[0]["result"]["score"] < 1.0
        assert len(responses[1]["result"]["candidates"]) == 1
        assert len(responses[2]["result"]["candidates"]) == 2
        assert summary.errors == 0 and summary.rows == 1 + 1 + 2


# --------------------------------------------------------------------------- #
# Deprecation shims
# --------------------------------------------------------------------------- #
class TestShimParity:
    def test_predict_batch_matches_generic_serve(self):
        # fresh registries: the deltas in the stats block depend on sequence
        # store state, so parity needs identical starting conditions
        payloads = [SCORE_PAYLOAD, {"static_indices": [2, 21], "history": [3]}]
        via_shim = predict_batch(make_registry(), "golden", payloads, head="classify")
        via_serve = make_registry().serve("golden", payloads, head="classify")
        assert via_shim == via_serve

    def test_rank_topk_batch_matches_generic_serve(self, registry):
        payloads = [{"static_indices": [1, 0], "candidates": [10, 11, 12]}]
        via_shim = rank_topk_batch(registry, "golden", payloads, k=2)
        via_serve = registry.serve("golden", payloads, head="rank-topk", k=2)
        assert via_shim == via_serve
        assert via_shim["stats"]["candidates_ranked"] == 3

    def test_recommend_batch_matches_generic_serve(self, registry):
        payloads = [{"static_indices": [1, 0], "history": [1, 2], "k": 3}]
        via_shim = recommend_batch(registry, "golden", payloads)
        via_serve = registry.serve("golden", payloads, head="recommend")
        assert via_shim == via_serve
        assert via_shim["stats"]["catalog_size"] == len(CATALOG)

    def test_shims_validate_like_the_protocol(self, registry):
        with pytest.raises(ProtocolError):
            rank_topk_batch(registry, "golden",
                            [{"static_indices": [1], "candidates": [10], "k": 0}])
        with pytest.raises(ValueError, match="no requests"):
            predict_batch(registry, "golden", [])


# --------------------------------------------------------------------------- #
# Golden wire-format file
# --------------------------------------------------------------------------- #
class TestGoldenWireFormat:
    def test_serve_golden_file_byte_stable(self):
        """The full protocol surface — v0/v1, every head, every error code —
        served against a deterministic registry must reproduce the committed
        response file byte for byte.  Regenerate deliberately with
        ``REPRO_REGEN_GOLDEN=1`` after an intentional wire-format change."""
        registry = make_registry()
        output = io.StringIO()
        with GOLDEN_INPUT.open() as input_stream:
            summary = serve_jsonl(registry, "golden", input_stream, output,
                                  head="score", k=3)
        actual = output.getvalue()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_EXPECTED.write_text(actual)
        assert actual == GOLDEN_EXPECTED.read_text(), (
            "wire-format drift: serve_jsonl output no longer matches "
            f"{GOLDEN_EXPECTED.name}; if the change is intentional, "
            "regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert summary.errors == sum(summary.error_codes.values()) > 0
        assert summary.served > 0
