"""Tests for the extra related-work baselines (DeepFM, FNN, PNN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EXTRA_BASELINE_REGISTRY, DeepFM, FNN, PNN, FM
from repro.core.tasks import make_task_model
from repro.data.features import FeatureBatch
from repro.nn.optim import Adam


@pytest.fixture
def batch(encoder, tiny_log, split):
    examples = encoder.encode_training_instances(split.train)
    return FeatureBatch.from_examples(examples[:10])


def _build(name, encoder):
    cls = EXTRA_BASELINE_REGISTRY[name]
    return cls(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)


class TestSharedContract:
    def test_registry_contents(self):
        assert set(EXTRA_BASELINE_REGISTRY) == {"DeepFM", "FNN", "PNN"}

    @pytest.mark.parametrize("name", sorted(EXTRA_BASELINE_REGISTRY))
    def test_forward_shape_and_finiteness(self, name, encoder, batch):
        model = _build(name, encoder)
        scores = model.score(batch)
        assert scores.shape == (len(batch),)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("name", sorted(EXTRA_BASELINE_REGISTRY))
    def test_gradients_flow(self, name, encoder, batch):
        model = _build(name, encoder)
        (model(batch) ** 2).sum().backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert sum(grads) == len(grads)

    @pytest.mark.parametrize("name", sorted(EXTRA_BASELINE_REGISTRY))
    def test_adam_step_reduces_loss(self, name, encoder, batch):
        model = _build(name, encoder)
        task = make_task_model(model, "regression")
        optimizer = Adam(model.parameters(), lr=0.01)
        first = task.loss(batch)
        first.backward()
        optimizer.step()
        model.zero_grad()
        assert task.loss(batch).item() < first.item() + 1e-9


class TestDeepFM:
    def test_fm_component_matches_plain_fm(self, encoder, batch):
        """With identical embeddings, DeepFM's FM component must equal the plain
        FM's pairwise-interaction term."""
        deepfm = DeepFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        fm = FM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        fm.static_embedding.weight.data[...] = deepfm.static_embedding.weight.data
        fm.dynamic_embedding.weight.data[...] = deepfm.dynamic_embedding.weight.data
        fm.static_linear.data[...] = 0.0
        fm.dynamic_linear.data[...] = 0.0
        fm.global_bias.data[...] = 0.0
        np.testing.assert_allclose(deepfm._fm_component(batch).data, fm.score(batch), atol=1e-10)

    def test_deep_component_contributes(self, encoder, batch):
        model = DeepFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        full = model.score(batch)
        model.dnn.layers[-1].weight.data[...] = 0.0
        model.dnn.layers[-1].bias.data[...] = 0.0
        assert not np.allclose(full, model.score(batch))


class TestFNN:
    def test_pretrain_copies_fm_embeddings(self, encoder, tiny_log, split):
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        model = FNN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        before = model.static_embedding.weight.data.copy()
        model.pretrain(examples, epochs=1, batch_size=16)
        assert not np.allclose(before, model.static_embedding.weight.data)

    def test_pretrain_zero_epochs_is_noop_for_embeddings(self, encoder, tiny_log, split):
        examples = encoder.encode_training_instances(split.train)
        model = FNN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        model.pretrain(examples, epochs=0)
        # Copied from an untrained FM with the same seed: still a valid state.
        assert np.isfinite(model.static_embedding.weight.data).all()


class TestPNN:
    def test_product_layer_size(self, encoder):
        model = PNN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        # Input to the first MLP layer: 3 fields × d + 3 pairwise inner products.
        assert model.mlp.layers[0].in_features == 3 * 8 + 3

    def test_history_influences_product_layer(self, encoder, tiny_log):
        model = PNN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        model.dynamic_linear.data[...] = 0.0
        history_a = tiny_log.user_sequence(0)[:3]
        history_b = tiny_log.user_sequence(0)[3:6]
        a = encoder.encode(0, 15, history_a)
        b = encoder.encode(0, 15, history_b)
        scores = model.score(FeatureBatch.from_examples([a, b]))
        assert scores[0] != scores[1]
