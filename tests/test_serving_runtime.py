"""Tests for the serving runtime around the engine: micro-batcher invariants,
LRU caching, the model registry and the JSONL service front-end."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.batching import pad_sequences
from repro.data.features import FeatureBatch, FeatureEncoder, PADDING_INDEX
from repro.serving import (
    InferenceEngine,
    LRUCache,
    MicroBatcher,
    ModelRegistry,
    ScoreRequest,
    UserSequenceStore,
    predict_batch,
    serve_jsonl,
)

CONFIG = SeqFMConfig(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=6,
                     embed_dim=8, dropout=0.0, seed=5)


@pytest.fixture
def model() -> SeqFM:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(2)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.2, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


@pytest.fixture
def engine(model: SeqFM) -> InferenceEngine:
    return InferenceEngine(model)


def make_requests(count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    requests = []
    for index in range(count):
        length = int(rng.integers(0, 10))  # some longer than max_seq_len
        requests.append(ScoreRequest(
            static_indices=[int(rng.integers(0, 40)), int(rng.integers(0, 40))],
            history=[int(item) for item in rng.integers(1, 30, length)],
            user_id=index % 7,
            object_id=index,
        ))
    return requests


# --------------------------------------------------------------------------- #
# pad_sequences collation
# --------------------------------------------------------------------------- #
class TestPadSequences:
    def test_matches_feature_encoder_layout(self, tiny_log):
        encoder = FeatureEncoder(tiny_log, max_seq_len=4)
        user_id = 0
        events = tiny_log.by_user()[user_id]
        history, candidate = events[:-1], events[-1]
        example = encoder.encode(user_id, candidate.object_id, history)
        raw = [int(encoder.dynamic_object_index(event.object_id)) for event in history]
        indices, mask = pad_sequences([raw], max_seq_len=4)
        np.testing.assert_array_equal(indices[0], example.dynamic_indices)
        np.testing.assert_array_equal(mask[0], example.dynamic_mask)

    def test_left_padding_and_truncation(self):
        indices, mask = pad_sequences([[1, 2], [], [5, 6, 7, 8, 9]], max_seq_len=3)
        np.testing.assert_array_equal(indices[0], [PADDING_INDEX, 1, 2])
        np.testing.assert_array_equal(mask[0], [0.0, 1.0, 1.0])
        np.testing.assert_array_equal(indices[1], [PADDING_INDEX] * 3)
        np.testing.assert_array_equal(mask[1], [0.0, 0.0, 0.0])
        # truncation keeps the most recent events
        np.testing.assert_array_equal(indices[2], [7, 8, 9])
        np.testing.assert_array_equal(mask[2], [1.0, 1.0, 1.0])

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pad_sequences([[1]], max_seq_len=0)


# --------------------------------------------------------------------------- #
# Micro-batcher
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_results_in_submission_order(self, engine):
        requests = make_requests(23, seed=1)
        batcher = MicroBatcher(engine.score, max_batch_size=5, max_seq_len=CONFIG.max_seq_len)
        scores = batcher.score_all(requests)
        # reference: score each request alone (batch of one)
        singles = np.array([
            float(engine.score(batcher.collate([request]))[0]) for request in requests
        ])
        np.testing.assert_allclose(scores, singles, atol=1e-9)
        assert batcher.stats.batches >= 5  # 23 requests / max 5 per flush

    def test_auto_flush_at_max_batch_size(self, engine):
        batcher = MicroBatcher(engine.score, max_batch_size=4, max_seq_len=CONFIG.max_seq_len)
        handles = [batcher.submit(request) for request in make_requests(4)]
        assert all(handle.done for handle in handles)  # 4th submit flushed
        assert len(batcher) == 0
        assert batcher.stats.batches == 1

    def test_pending_until_flush(self, engine):
        batcher = MicroBatcher(engine.score, max_batch_size=100, max_seq_len=CONFIG.max_seq_len)
        handle = batcher.submit(make_requests(1)[0])
        assert not handle.done
        with pytest.raises(RuntimeError):
            _ = handle.value
        assert batcher.flush() == 1
        assert handle.done and np.isfinite(handle.value)

    def test_failed_chunk_resolves_handles_with_error(self, engine):
        """A poison request fails its chunk's handles; the batcher survives."""
        batcher = MicroBatcher(engine.score, max_batch_size=2, max_seq_len=CONFIG.max_seq_len)
        good = make_requests(2, seed=5)
        first = batcher.submit(good[0])
        with pytest.raises(IndexError):
            batcher.submit(ScoreRequest(static_indices=[999999, 0]))  # auto-flush fails
        assert first.done and isinstance(first.error, IndexError)
        with pytest.raises(IndexError):
            _ = first.value
        # the batcher is not wedged: subsequent requests score normally
        survivor = batcher.submit(good[1])
        assert batcher.flush() == 1
        assert survivor.error is None and np.isfinite(survivor.value)

    def test_flush_empty_is_noop(self, engine):
        batcher = MicroBatcher(engine.score, max_batch_size=4, max_seq_len=CONFIG.max_seq_len)
        assert batcher.flush() == 0

    def test_collate_padding_invariants(self, engine):
        batcher = MicroBatcher(engine.score, max_batch_size=8, max_seq_len=CONFIG.max_seq_len)
        requests = make_requests(8, seed=3)
        batch = batcher.collate(requests)
        assert isinstance(batch, FeatureBatch)
        assert batch.dynamic_indices.shape == (8, CONFIG.max_seq_len)
        # mask marks exactly the non-padding slots, padding slots hold index 0
        np.testing.assert_array_equal(batch.dynamic_mask > 0, batch.dynamic_indices != 0)
        for row, request in enumerate(requests):
            expected, _ = pad_sequences([request.history], CONFIG.max_seq_len)
            np.testing.assert_array_equal(batch.dynamic_indices[row], expected[0])

    def test_rejects_ragged_static_features(self, engine):
        batcher = MicroBatcher(engine.score, max_batch_size=4, max_seq_len=CONFIG.max_seq_len)
        with pytest.raises(ValueError):
            batcher.collate([ScoreRequest(static_indices=[1, 2]),
                             ScoreRequest(static_indices=[1, 2, 3])])

    def test_sequence_store_does_not_change_scores(self, engine):
        requests = make_requests(30, seed=4)
        plain = MicroBatcher(engine.score, max_batch_size=10,
                             max_seq_len=CONFIG.max_seq_len)
        cached = MicroBatcher(engine.score, max_batch_size=10,
                              max_seq_len=CONFIG.max_seq_len,
                              sequence_store=UserSequenceStore(CONFIG.max_seq_len, capacity=64))
        np.testing.assert_array_equal(plain.score_all(requests), cached.score_all(requests))

    def test_store_seq_len_mismatch_rejected(self, engine):
        with pytest.raises(ValueError):
            MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len,
                         sequence_store=UserSequenceStore(CONFIG.max_seq_len + 1))


# --------------------------------------------------------------------------- #
# LRU cache + user-sequence store
# --------------------------------------------------------------------------- #
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refreshes "a"
        cache.put("c", 3)                # evicts "b", the LRU entry
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_updates_existing_without_eviction(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 10)
        cache.put("b", 2)
        assert len(cache) == 2 and cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_stats_and_capacity_validation(self):
        cache = LRUCache(capacity=1)
        cache.get("missing")
        cache.put("x", 1)
        cache.get("x")
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_hit_rate_of_empty_cache_is_zero(self):
        assert LRUCache(capacity=4).stats.hit_rate == 0.0

    def test_overwrite_at_capacity_does_not_evict(self):
        """Updating the key that fills the cache must not count an eviction."""
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("a", 3)
        assert len(cache) == 1 and cache.stats.evictions == 0
        assert cache.get("a") == 3

    def test_overwrite_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)       # "a" becomes MRU
        cache.put("c", 3)        # evicts "b", not "a"
        assert "a" in cache and "b" not in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_pop_and_clear_leave_stats_untouched(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None      # popping a missing key is not a miss
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0 and cache.stats.evictions == 0

    def test_capacity_one_churn_counts_every_eviction(self):
        cache = LRUCache(capacity=1)
        for index in range(5):
            cache.put(index, index)
        assert cache.stats.evictions == 4
        assert cache.keys() == [4]


class TestUserSequenceStore:
    def test_hit_on_repeat_history(self):
        store = UserSequenceStore(max_seq_len=4, capacity=8)
        first_i, first_m = store.encode(1, [3, 4, 5])
        second_i, second_m = store.encode(1, [3, 4, 5])
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert second_i is first_i and second_m is first_m  # no re-encoding

    def test_changed_history_is_reencoded(self):
        store = UserSequenceStore(max_seq_len=4, capacity=8)
        store.encode(1, [3, 4, 5])
        indices, mask = store.encode(1, [3, 4, 5, 6])
        assert store.stats.misses == 2 and store.stats.hits == 0
        expected, _ = pad_sequences([[3, 4, 5, 6]], 4)
        np.testing.assert_array_equal(indices, expected[0])

    def test_only_visible_suffix_matters(self):
        """Prefix events beyond max_seq_len do not invalidate the cache."""
        store = UserSequenceStore(max_seq_len=3, capacity=8)
        store.encode(1, [9, 1, 2, 3])
        store.encode(1, [8, 8, 1, 2, 3])  # same last-3 suffix
        assert store.stats.hits == 1

    def test_lru_eviction_of_users(self):
        store = UserSequenceStore(max_seq_len=3, capacity=2)
        store.encode(1, [1])
        store.encode(2, [2])
        store.encode(3, [3])  # evicts user 1
        assert 1 not in store and 2 in store and 3 in store
        assert store.stats.evictions == 1

    def test_append_event_keeps_entry_fresh(self):
        store = UserSequenceStore(max_seq_len=3, capacity=8)
        store.encode(7, [1, 2, 3])
        store.append_event(7, 4)
        indices, _ = store.encode(7, [1, 2, 3, 4])  # matches appended state
        assert store.stats.hits == 1
        np.testing.assert_array_equal(indices, [2, 3, 4])

    def test_invalidate(self):
        store = UserSequenceStore(max_seq_len=3, capacity=8)
        store.encode(7, [1])
        store.invalidate(7)
        assert 7 not in store

    def test_hit_rate_with_zero_requests_is_zero(self):
        """The zero-request edge: hit_rate must not divide by zero."""
        store = UserSequenceStore(max_seq_len=3, capacity=8)
        assert store.stats.requests == 0
        assert store.stats.hit_rate == 0.0
        store.encode(1, [1, 2])
        assert store.stats.hit_rate == 0.0  # one miss, still well-defined
        store.encode(1, [1, 2])
        assert store.stats.hit_rate == 0.5


# --------------------------------------------------------------------------- #
# Registry + service
# --------------------------------------------------------------------------- #
class TestModelRegistry:
    def test_checkpoint_round_trip_preserves_scores(self, model, engine, tmp_path):
        batch = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len).collate(
            make_requests(6)
        )
        expected = model.score(batch)

        registry = ModelRegistry()
        registry.register("seqfm", model)
        path = registry.save("seqfm", tmp_path / "seqfm.npz")

        fresh = ModelRegistry()
        entry = fresh.load("seqfm", path)
        assert entry.model.config == model.config
        np.testing.assert_allclose(fresh.rank("seqfm", batch), expected,
                                   rtol=0.0, atol=1e-10)

    def test_hot_reload_keeps_engine(self, model, tmp_path):
        registry = ModelRegistry()
        entry = registry.register("seqfm", model)
        registry.save("seqfm", tmp_path / "v1.npz")
        model.projection.data[...] += 0.5
        registry.save("seqfm", tmp_path / "v2.npz")
        reloaded = registry.load("seqfm", tmp_path / "v1.npz")
        assert reloaded is entry  # same holder: weights swapped in place
        assert reloaded.engine is entry.engine

    def test_endpoints_mirror_task_heads(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        batch = MicroBatcher(InferenceEngine(model).score,
                             max_seq_len=CONFIG.max_seq_len).collate(make_requests(5))
        scores = registry.rank("m", batch)
        probabilities = registry.classify("m", batch)
        np.testing.assert_allclose(
            probabilities, 1.0 / (1.0 + np.exp(-np.clip(scores, -60, 60))), atol=1e-12
        )
        np.testing.assert_array_equal(registry.regress("m", batch), scores)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("nope")

    def test_names_and_membership(self, model):
        registry = ModelRegistry()
        registry.register("b", model)
        registry.register("a", model)
        assert registry.names() == ["a", "b"]
        assert "a" in registry and len(registry) == 2
        registry.unregister("a")
        assert "a" not in registry


class TestService:
    def payloads(self, count=5):
        return [
            {"static_indices": [index, 20 + index], "history": [1 + index, 2 + index],
             "user_id": index, "object_id": index}
            for index in range(count)
        ]

    def test_predict_batch_payload(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        response = predict_batch(registry, "m", self.payloads(), head="classify",
                                 max_batch_size=2)
        assert response["model"] == "m" and response["head"] == "classify"
        assert len(response["scores"]) == 5
        assert all(0.0 < score < 1.0 for score in response["scores"])
        assert response["stats"]["batches"] >= 3  # 5 requests, flush at 2

    def test_predict_batch_rejects_empty_and_bad_head(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError):
            predict_batch(registry, "m", [])
        with pytest.raises(ValueError):
            predict_batch(registry, "m", self.payloads(), head="frobnicate")

    def test_engine_rejects_out_of_range_indices(self, engine):
        batcher = MicroBatcher(engine.score, max_seq_len=CONFIG.max_seq_len)
        with pytest.raises(IndexError):
            engine.score(batcher.collate([ScoreRequest(static_indices=[999999, 0])]))
        with pytest.raises(IndexError):
            engine.score(batcher.collate([ScoreRequest(static_indices=[0, 1],
                                                       history=[CONFIG.dynamic_vocab_size])]))

    def test_serve_jsonl_survives_bad_request(self, model):
        """An out-of-range index must error that line, not kill the loop."""
        registry = ModelRegistry()
        registry.register("m", model)
        bad = {"static_indices": [999999, 0], "history": []}
        lines = [json.dumps(bad), json.dumps(self.payloads(1)[0])]
        output = io.StringIO()
        summary = serve_jsonl(registry, "m", io.StringIO("\n".join(lines) + "\n"), output)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert summary.rows == 1
        assert summary.errors == 1
        assert summary.error_codes == {"execution_error": 1}
        error = responses[0]["error"]
        assert error["code"] == "execution_error"
        assert error["line"] == 1
        assert "out of range" in error["message"]
        assert len(responses[1]["scores"]) == 1

    def test_serve_jsonl_round_trip(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        lines = [json.dumps(self.payloads(1)[0]), "", json.dumps(self.payloads(3)),
                 "this is not json"]
        output = io.StringIO()
        summary = serve_jsonl(registry, "m", io.StringIO("\n".join(lines) + "\n"), output)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert summary.rows == 4  # 1 + 3 scored rows; blank skipped, bad line errored
        assert summary.lines == 3  # blank line not counted
        assert summary.errors == 1 and summary.served == 2
        assert len(responses) == 3
        assert len(responses[0]["scores"]) == 1
        assert len(responses[1]["scores"]) == 3
        assert "error" in responses[2]
