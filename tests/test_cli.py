"""Tests for the experiments command-line interface.

The CLI runners are exercised on the cheapest artefacts (Table I, Figure 4
with a reduced proportion list is too slow for unit tests, so only its parser
wiring is checked); the full experiment execution paths are covered by the
benchmark suite.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.cli import (
    EXPERIMENTS,
    SERVING_COMMANDS,
    build_parser,
    build_serving_parser,
    main,
    run_experiment,
)


class TestParser:
    def test_known_experiments(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "table3", "table4",
                                    "table5", "figure3", "figure4"}

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick"
        assert args.datasets is None
        assert args.output is None

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_parser_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])

    def test_parser_accepts_dataset_list(self):
        args = build_parser().parse_args(["table2", "--datasets", "gowalla", "foursquare"])
        assert args.datasets == ["gowalla", "foursquare"]


class TestExecution:
    def test_table1_runs_and_prints(self, capsys):
        run_experiment("table1", scale="quick", datasets=["beauty"], seed=0)
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "beauty" in output

    def test_table1_json_export(self, tmp_path, capsys):
        output = tmp_path / "table1.json"
        run_experiment("table1", scale="quick", datasets=["toys"], seed=0, output=output)
        capsys.readouterr()
        payload = json.loads(output.read_text())
        assert "toys" in payload["rows"]
        assert payload["columns"] == ["instances", "users", "objects", "features"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("table9", scale="quick", datasets=None, seed=0)

    def test_main_entry_point_table1(self, capsys):
        exit_code = main(["table1", "--datasets", "beauty"])
        assert exit_code == 0
        assert "Table I" in capsys.readouterr().out


class TestServingCommands:
    @pytest.fixture
    def checkpoint(self, tmp_path):
        from repro.core.config import SeqFMConfig
        from repro.core.model import SeqFM
        from repro.core.serialization import save_seqfm

        model = SeqFM(SeqFMConfig(static_vocab_size=20, dynamic_vocab_size=15,
                                  max_seq_len=4, embed_dim=8, seed=0))
        path = tmp_path / "model.npz"
        save_seqfm(model, path)
        return path

    @pytest.fixture
    def requests_file(self, tmp_path):
        payloads = [
            {"static_indices": [1, 11], "history": [2, 3], "user_id": 1, "object_id": 11},
            {"static_indices": [2, 12], "history": [], "user_id": 2, "object_id": 12},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payloads))
        return path

    def test_known_serving_commands(self):
        assert set(SERVING_COMMANDS) == {"serve", "predict-batch", "rank-topk",
                                         "recommend"}

    def test_serving_parser_defaults(self, checkpoint):
        args = build_serving_parser("predict-batch").parse_args(
            ["--checkpoint", str(checkpoint), "--requests", "r.json"]
        )
        assert args.head == "score"
        assert args.max_batch_size == 256
        assert args.cache_capacity == 4096
        assert args.cache_ttl is None

    def test_serving_parser_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_serving_parser("serve").parse_args([])

    def test_predict_batch_stdout(self, checkpoint, requests_file, capsys):
        exit_code = main(["predict-batch", "--checkpoint", str(checkpoint),
                          "--requests", str(requests_file), "--head", "classify"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["head"] == "classify"
        assert len(payload["scores"]) == 2
        assert all(0.0 < score < 1.0 for score in payload["scores"])

    def test_predict_batch_output_file(self, checkpoint, requests_file, tmp_path, capsys):
        output = tmp_path / "scores.json"
        exit_code = main(["predict-batch", "--checkpoint", str(checkpoint),
                          "--requests", str(requests_file), "--output", str(output)])
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert len(payload["scores"]) == 2
        assert np.isfinite(payload["scores"]).all()

    def test_serve_parser_accepts_update_head(self, checkpoint):
        args = build_serving_parser("serve").parse_args(
            ["--checkpoint", str(checkpoint), "--head", "update"]
        )
        assert args.head == "update"
        with pytest.raises(SystemExit):
            build_serving_parser("predict-batch").parse_args(
                ["--checkpoint", str(checkpoint), "--requests", "r.json",
                 "--head", "update"]
            )

    def test_serve_stream_envelopes_and_error_codes(self, checkpoint, capsys,
                                                    monkeypatch):
        """The serve subcommand speaks the v1 envelope protocol end to end:
        per-line head routing, the stateful update head, structured errors
        with codes in the operator summary."""
        import io
        import sys

        lines = [
            json.dumps({"static_indices": [1, 11], "history": [2, 3]}),   # v0
            json.dumps({"v": 1, "head": "update",
                        "payload": {"user_id": 1, "events": [4]}}),
            json.dumps({"v": 1, "head": "classify", "id": 7,
                        "payload": {"static_indices": [1, 11], "user_id": 1}}),
            json.dumps({"v": 2, "payload": {}}),                          # error
            "not json",                                                   # error
        ]
        monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        exit_code = main(["serve", "--checkpoint", str(checkpoint)])
        captured = capsys.readouterr()
        assert exit_code == 0
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert "scores" in responses[0]
        assert responses[1]["result"] == {"user_id": 1, "appended": 1,
                                          "history_len": 1}
        assert responses[2]["head"] == "classify" and responses[2]["id"] == 7
        assert responses[3]["error"]["code"] == "unsupported_version"
        assert responses[4]["error"]["code"] == "bad_json"
        assert "2 errors" in captured.err
        assert "bad_json=1" in captured.err
        assert "unsupported_version=1" in captured.err


class TestTrainCommand:
    def test_train_parser_defaults(self):
        from repro.experiments.cli import build_train_parser

        args = build_train_parser().parse_args(
            ["--dataset", "gowalla", "--checkpoint", "ckpt.npz"]
        )
        assert args.scale == "quick"
        assert args.epochs is None
        assert not args.looped_negatives

    def test_train_parser_rejects_unknown_dataset(self):
        from repro.experiments.cli import build_train_parser

        with pytest.raises(SystemExit):
            build_train_parser().parse_args(
                ["--dataset", "netflix", "--checkpoint", "ckpt.npz"]
            )

    def test_train_writes_servable_checkpoint(self, tmp_path, capsys):
        """The train -> serve loop: the checkpoint loads into the registry."""
        from repro.serving import ModelRegistry

        checkpoint = tmp_path / "ranker.npz"
        exit_code = main(["train", "--dataset", "gowalla", "--scale", "quick",
                          "--epochs", "1", "--checkpoint", str(checkpoint)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert checkpoint.exists()
        assert "task=ranking" in output
        assert "wrote" in output

        registry = ModelRegistry()
        entry = registry.load("ranker", checkpoint)
        batcher = entry.batcher(head="score")
        from repro.serving import ScoreRequest

        scores = batcher.score_all([
            ScoreRequest(static_indices=[0, entry.model.config.static_vocab_size - 1],
                         history=[1, 2, 3], user_id=0, object_id=1),
        ])
        assert np.isfinite(scores).all()
