"""Tests for the experiments command-line interface.

The CLI runners are exercised on the cheapest artefacts (Table I, Figure 4
with a reduced proportion list is too slow for unit tests, so only its parser
wiring is checked); the full experiment execution paths are covered by the
benchmark suite.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_known_experiments(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "table3", "table4",
                                    "table5", "figure3", "figure4"}

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick"
        assert args.datasets is None
        assert args.output is None

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_parser_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])

    def test_parser_accepts_dataset_list(self):
        args = build_parser().parse_args(["table2", "--datasets", "gowalla", "foursquare"])
        assert args.datasets == ["gowalla", "foursquare"]


class TestExecution:
    def test_table1_runs_and_prints(self, capsys):
        run_experiment("table1", scale="quick", datasets=["beauty"], seed=0)
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "beauty" in output

    def test_table1_json_export(self, tmp_path, capsys):
        output = tmp_path / "table1.json"
        run_experiment("table1", scale="quick", datasets=["toys"], seed=0, output=output)
        capsys.readouterr()
        payload = json.loads(output.read_text())
        assert "toys" in payload["rows"]
        assert payload["columns"] == ["instances", "users", "objects", "features"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("table9", scale="quick", datasets=None, seed=0)

    def test_main_entry_point_table1(self, capsys):
        exit_code = main(["table1", "--datasets", "beauty"])
        assert exit_code == 0
        assert "Table I" in capsys.readouterr().out
