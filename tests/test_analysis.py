"""The static analyzer: each rule on fixture snippets, plus the CLI contract.

Every rule is exercised three ways — a bad snippet flagged at the expected
line, a good snippet that passes, and the escape hatches (``with self._lock:``
scoping, ``# repro: locked`` annotations, ``# repro: allow[...]``
suppressions, the committed baseline).  The CLI tests pin the exit-code
contract (0 clean / 1 findings / 2 usage error) and the real-tree test keeps
``src/`` clean against ``analysis-baseline.txt`` forever.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    KernelPurityRule,
    LockDisciplineRule,
    NumericsHygieneRule,
    ProtocolCompletenessRule,
    SYNTAX_ERROR_RULE,
    analyze,
)
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def run(tmp_path, files, rules, baseline=()):
    """Write ``files`` (path → snippet) under tmp_path and analyze them."""
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze([tmp_path], rules, root=tmp_path, baseline=list(baseline))


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #
LOCK_RULE = LockDisciplineRule(
    shared_state={"store.py": {"Store": {"_items": "_lock"}}})


class TestLockDiscipline:
    def test_unlocked_write_is_flagged_at_its_line(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def drop(self, key):
                    self._items.pop(key)
            """}, [LOCK_RULE])
        assert [(f.rule, f.line) for f in report.findings] == \
            [("lock-discipline", 3)]
        assert "_items.pop()" in report.findings[0].message

    def test_write_inside_with_lock_passes(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def drop(self, key):
                    with self._lock:
                        self._items.pop(key)
                        self._items = {}
            """}, [LOCK_RULE])
        assert report.ok and not report.suppressed

    def test_wrong_lock_does_not_count(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def drop(self, key):
                    with self._other_lock:
                        self._items = {}
            """}, [LOCK_RULE])
        assert [f.line for f in report.findings] == [4]

    def test_init_is_exempt(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def __init__(self):
                    self._items = {}
            """}, [LOCK_RULE])
        assert report.ok

    def test_locked_annotation_asserts_callers_hold_the_lock(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def _drop(self, key):  # repro: locked[_lock]
                    self._items.pop(key)
            """}, [LOCK_RULE])
        assert report.ok

    def test_nested_function_does_not_inherit_the_lock(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def schedule(self):
                    with self._lock:
                        def later():
                            self._items = {}
                        return later
            """}, [LOCK_RULE])
        assert [f.line for f in report.findings] == [5]

    def test_allow_comment_suppresses(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                def drop(self, key):
                    self._items.pop(key)  # repro: allow[lock-discipline]
            """}, [LOCK_RULE])
        assert report.ok and len(report.suppressed) == 1


# --------------------------------------------------------------------------- #
# kernel-purity
# --------------------------------------------------------------------------- #
KERNEL_RULE = KernelPurityRule(kernel_modules=("kern.py",))


class TestKernelPurity:
    def test_loop_over_data_is_flagged(self, tmp_path):
        report = run(tmp_path, {"kern.py": """\
            def score(rows):
                total = 0.0
                for row in rows:
                    total = total + row
                return total
            """}, [KERNEL_RULE])
        assert [(f.rule, f.line) for f in report.findings] == \
            [("kernel-purity", 3)]

    def test_parameter_mutation_is_flagged(self, tmp_path):
        report = run(tmp_path, {"kern.py": """\
            def normalise(scores, out):
                out[:] = scores
                out += 1.0
                out.sort()
            """}, [KERNEL_RULE])
        assert [f.line for f in report.findings] == [2, 3, 4]

    def test_builtin_reduction_is_flagged_but_scalar_min_is_not(self, tmp_path):
        report = run(tmp_path, {"kern.py": """\
            def reduce(scores, k):
                top = min(k, 10)
                return sum(scores) + top
            """}, [KERNEL_RULE])
        assert [f.line for f in report.findings] == [3]
        assert "sum()" in report.findings[0].message

    def test_vectorised_kernel_with_rebound_parameter_passes(self, tmp_path):
        report = run(tmp_path, {"kern.py": """\
            import numpy as np

            def score(matrix, query):
                query = np.asarray(query, dtype=np.float64)
                query /= np.linalg.norm(query)
                return matrix @ query
            """}, [KERNEL_RULE])
        assert report.ok

    def test_allowed_block_sweep_passes(self, tmp_path):
        report = run(tmp_path, {"kern.py": """\
            def sweep(matrix, block):
                for start in range(0, 10, block):  # repro: allow[kernel-purity]
                    pass
            """}, [KERNEL_RULE])
        assert report.ok and len(report.suppressed) == 1

    def test_non_kernel_module_is_ignored(self, tmp_path):
        report = run(tmp_path, {"other.py": """\
            def anything(rows):
                for row in rows:
                    pass
            """}, [KERNEL_RULE])
        assert report.ok


# --------------------------------------------------------------------------- #
# protocol-completeness
# --------------------------------------------------------------------------- #
PROTO_RULE = ProtocolCompletenessRule(protocol_module="proto/protocol.py",
                                      cli_module="proto/cli.py")

PROTOCOL_OK = """\
    ERR_BAD = "bad-request"
    ERR_LOST = "lost"
    ERROR_CODES = (ERR_BAD, ERR_LOST)

    class Head:
        name = ""

    class ScoreHead(Head):
        name = "score"

    REGISTRY = HeadRegistry([ScoreHead()])

    def fail():
        raise ProtocolError(ERR_BAD, "nope")
    """

CLI_OK = """\
    head_choices = ("score",)
    """


class TestProtocolCompleteness:
    def test_complete_protocol_passes(self, tmp_path):
        report = run(tmp_path, {"proto/protocol.py": PROTOCOL_OK,
                                "proto/cli.py": CLI_OK}, [PROTO_RULE])
        assert report.ok

    def test_unregistered_head_is_flagged_at_its_class(self, tmp_path):
        source = PROTOCOL_OK + """
    class RankHead(Head):
        name = "rank"
    """
        report = run(tmp_path, {"proto/protocol.py": source,
                                "proto/cli.py": CLI_OK}, [PROTO_RULE])
        assert len(report.findings) == 1
        assert "RankHead" in report.findings[0].message
        assert "never registered" in report.findings[0].message

    def test_error_code_missing_from_tuple_is_flagged(self, tmp_path):
        source = PROTOCOL_OK.replace("ERROR_CODES = (ERR_BAD, ERR_LOST)",
                                     "ERROR_CODES = (ERR_BAD,)")
        report = run(tmp_path, {"proto/protocol.py": source,
                                "proto/cli.py": CLI_OK}, [PROTO_RULE])
        assert [f.message for f in report.findings] == \
            ["error code constant 'ERR_LOST' is missing from ERROR_CODES"]

    def test_raising_an_undeclared_code_is_flagged(self, tmp_path):
        source = PROTOCOL_OK + """
    def fail_harder():
        raise ProtocolError("unheard-of", "nope")
    """
        report = run(tmp_path, {"proto/protocol.py": source,
                                "proto/cli.py": CLI_OK}, [PROTO_RULE])
        assert len(report.findings) == 1
        assert "'unheard-of'" in report.findings[0].message

    def test_registered_head_without_cli_route_is_flagged(self, tmp_path):
        report = run(tmp_path, {"proto/protocol.py": PROTOCOL_OK,
                                "proto/cli.py": 'head_choices = ("other",)\n'},
                     [PROTO_RULE])
        assert len(report.findings) == 1
        assert "no CLI serving route" in report.findings[0].message

    def test_rule_is_silent_without_the_protocol_module(self, tmp_path):
        report = run(tmp_path, {"lone.py": "x = 1\n"}, [PROTO_RULE])
        assert report.ok


#: Online status-vocabulary fixtures: the rule locates the declaring modules
#: by suffix, so fixture paths mirror the real repro/online layout.
ONLINE_PROMOTION_OK = """\
    MANIFEST_STATUSES = ("promoted", "rejected")

    def record_promotion():
        return ModelVersion(version=1, status="promoted", checkpoint="m@v1.npz",
                            cursor_seq=5, parent=0, gate={}, examples=3)
    """

ONLINE_RETRAIN_OK = """\
    RETRAIN_STATUSES = ("promoted", "rejected", "no_new_events", "dry_run")

    def report_cycle():
        return RetrainReport(status="no_new_events", model="m",
                             start_seq=0, end_seq=0)
    """


class TestStatusVocabularies:
    FILES = {"proto/protocol.py": PROTOCOL_OK, "proto/cli.py": CLI_OK,
             "repro/online/promotion.py": ONLINE_PROMOTION_OK,
             "repro/online/retrain.py": ONLINE_RETRAIN_OK}

    def test_declared_statuses_pass(self, tmp_path):
        report = run(tmp_path, dict(self.FILES), [PROTO_RULE])
        assert report.ok

    def test_undeclared_manifest_status_is_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["repro/online/promotion.py"] = ONLINE_PROMOTION_OK + """
    def record_rollback():
        return ModelVersion(version=2, status="rolled_back", checkpoint=None,
                            cursor_seq=5, parent=1, gate={}, examples=0)
    """
        report = run(tmp_path, files, [PROTO_RULE])
        assert len(report.findings) == 1
        assert "'rolled_back'" in report.findings[0].message
        assert "MANIFEST_STATUSES" in report.findings[0].message

    def test_undeclared_retrain_status_is_flagged_anywhere(self, tmp_path):
        files = dict(self.FILES)
        files["repro/online/cli_glue.py"] = """\
    def weird():
        return RetrainReport(status="skipped", model="m",
                             start_seq=0, end_seq=0)
    """
        report = run(tmp_path, files, [PROTO_RULE])
        assert len(report.findings) == 1
        assert "'skipped'" in report.findings[0].message
        assert "RETRAIN_STATUSES" in report.findings[0].message

    def test_dynamic_status_is_not_guessed_at(self, tmp_path):
        files = dict(self.FILES)
        files["repro/online/retrain.py"] = ONLINE_RETRAIN_OK + """
    def passthrough(status):
        return RetrainReport(status=status, model="m", start_seq=0, end_seq=0)
    """
        report = run(tmp_path, files, [PROTO_RULE])
        assert report.ok


# --------------------------------------------------------------------------- #
# numerics-hygiene
# --------------------------------------------------------------------------- #
NUM_RULE = NumericsHygieneRule()


class TestNumericsHygiene:
    def test_float_equality_is_flagged(self, tmp_path):
        report = run(tmp_path, {"maths.py": """\
            def check(x):
                return x == 0.3
            """}, [NUM_RULE])
        assert [(f.rule, f.line) for f in report.findings] == \
            [("numerics-hygiene", 2)]
        assert "== 0.3" in report.findings[0].message

    def test_integer_equality_and_inequalities_pass(self, tmp_path):
        report = run(tmp_path, {"maths.py": """\
            def check(x):
                return x == 0 or x <= 0.5
            """}, [NUM_RULE])
        assert report.ok

    def test_unseeded_rng_and_global_rng_are_flagged(self, tmp_path):
        report = run(tmp_path, {"rng.py": """\
            import numpy as np
            a = np.random.default_rng()
            b = np.random.rand(3)
            """}, [NUM_RULE])
        assert [f.line for f in report.findings] == [2, 3]

    def test_seeded_rng_passes(self, tmp_path):
        report = run(tmp_path, {"rng.py": """\
            import numpy as np
            a = np.random.default_rng(7)
            b = np.random.default_rng(seed=7)
            """}, [NUM_RULE])
        assert report.ok

    def test_tests_and_benchmarks_are_exempt(self, tmp_path):
        snippet = "import numpy as np\nx = np.random.rand(3)\n"
        report = run(tmp_path, {"tests/test_x.py": snippet,
                                "benchmarks/bench_x.py": snippet}, [NUM_RULE])
        assert report.ok


# --------------------------------------------------------------------------- #
# Framework: baseline, syntax errors, determinism
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_baseline_grandfathers_and_reports_stale_entries(self, tmp_path):
        baseline = [
            "maths.py :: numerics-hygiene :: floating-point equality "
            "'== 0.3' — compare with a tolerance or an inequality",
            "gone.py :: numerics-hygiene :: long-paid debt",
        ]
        report = run(tmp_path, {"maths.py": "x = 1 == 0.3\n"}, [NUM_RULE],
                     baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1
        assert report.stale_baseline == [baseline[1]]

    def test_baseline_key_survives_line_shifts(self, tmp_path):
        report = run(tmp_path, {"maths.py": "x = 1 == 0.3\n"}, [NUM_RULE])
        key = report.findings[0].key()
        shifted = run(tmp_path, {"maths.py": "# pushed down\n\nx = 1 == 0.3\n"},
                      [NUM_RULE], baseline=[key])
        assert shifted.ok and len(shifted.baselined) == 1

    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        report = run(tmp_path, {"broken.py": "def broken(:\n",
                                "fine.py": "x = 1\n"}, [NUM_RULE])
        assert [f.rule for f in report.findings] == [SYNTAX_ERROR_RULE]
        assert report.findings[0].path == "broken.py"

    def test_report_order_is_deterministic(self, tmp_path):
        files = {"b.py": "x = 1 == 0.3\n", "a.py": "y = 2 == 0.5\nz = 3 == 0.5\n"}
        first = run(tmp_path, files, [NUM_RULE])
        second = analyze([tmp_path / "b.py", tmp_path / "a.py"], [NUM_RULE],
                         root=tmp_path)
        rendered = [f.render() for f in first.findings]
        assert rendered == [f.render() for f in second.findings]
        assert rendered == sorted(rendered)


# --------------------------------------------------------------------------- #
# CLI: exit codes and output formats
# --------------------------------------------------------------------------- #
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_exit_one_on_findings_with_location(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("x = 1 == 0.3\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        assert "dirty.py:1:5: numerics-hygiene" in capsys.readouterr().out

    def test_github_format_renders_annotations(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("x = 1 == 0.3\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--root", str(tmp_path),
                              "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=dirty.py,line=1,col=5,"
                              "title=numerics-hygiene::")

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "absent")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_write_baseline_round_trips_to_a_clean_run(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("x = 1 == 0.3\n", encoding="utf-8")
        baseline = tmp_path / "baseline.txt"
        assert analysis_main([str(tmp_path / "dirty.py"), "--root",
                              str(tmp_path), "--write-baseline",
                              str(baseline)]) == 0
        assert analysis_main([str(tmp_path / "dirty.py"), "--root",
                              str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_select_restricts_the_rules_run(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("x = 1 == 0.3\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--root", str(tmp_path),
                              "--select", "kernel-purity"]) == 0
        capsys.readouterr()

    def test_jobs_output_is_byte_identical_to_serial(self, tmp_path, capsys):
        for index in range(6):
            (tmp_path / f"mod_{index}.py").write_text(
                f"x{index} = {index} == 0.3\n", encoding="utf-8")
        serial_code = analysis_main([str(tmp_path), "--root", str(tmp_path)])
        serial = capsys.readouterr()
        parallel_code = analysis_main([str(tmp_path), "--root", str(tmp_path),
                                       "--jobs", "4"])
        parallel = capsys.readouterr()
        assert serial_code == parallel_code == 1
        assert serial.out == parallel.out

    def test_exit_two_on_nonpositive_jobs(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert analysis_main([str(tmp_path), "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_list_rules_names_all_seven(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("lock-discipline", "lock-order", "blocking-under-lock",
                        "shared-state-drift", "kernel-purity",
                        "protocol-completeness", "numerics-hygiene"):
            assert rule_id in out


# --------------------------------------------------------------------------- #
# The real tree stays clean against the committed baseline
# --------------------------------------------------------------------------- #
def test_src_tree_is_clean_against_committed_baseline(capsys):
    exit_code = analysis_main([
        str(REPO_ROOT / "src"),
        "--root", str(REPO_ROOT),
        "--baseline", str(REPO_ROOT / "analysis-baseline.txt"),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out
    # No stale entries either: every baselined debt still exists.
    assert "stale baseline entry" not in captured.err


def test_full_tree_is_clean_against_committed_baseline(capsys):
    """``make lint`` scope: src + tests + benchmarks, same baseline."""
    exit_code = analysis_main([
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "tests"),
        str(REPO_ROOT / "benchmarks"),
        "--root", str(REPO_ROOT),
        "--baseline", str(REPO_ROOT / "analysis-baseline.txt"),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out
    assert "stale baseline entry" not in captured.err


@pytest.mark.parametrize("expected", [
    "src/repro/serving/cache.py",  # _peek carries '# repro: locked[_lock]'
    "src/repro/nn/kernels.py",     # block sweeps carry inline allows
])
def test_escape_hatches_stay_visible_in_the_tree(expected):
    source = (REPO_ROOT / expected).read_text(encoding="utf-8")
    assert "# repro: " in source
