"""Tests for Linear, Embedding, LayerNorm, Dropout, ReLU, Sequential and the
residual feed-forward block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import Dropout, Embedding, LayerNorm, Linear, ReLU, Sequential
from repro.nn.feedforward import ResidualFeedForward


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_batched_input(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng=rng)

    def test_gradients_reach_weight_and_bias(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gradient_check_through_layer(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda ts: (layer(ts[0]) ** 2).sum(), [x])


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(10, 4, rng=rng)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_is_zero(self, rng):
        table = Embedding(10, 4, padding_idx=0, rng=rng)
        np.testing.assert_allclose(table(np.array([0])).data, np.zeros((1, 4)))

    def test_out_of_range_raises(self, rng):
        table = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            table(np.array([5]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_invalid_padding_idx(self, rng):
        with pytest.raises(ValueError):
            Embedding(5, 4, padding_idx=9, rng=rng)

    def test_gradient_scatters_to_rows(self, rng):
        table = Embedding(6, 3, rng=rng)
        out = table(np.array([2, 2, 5]))
        out.sum().backward()
        grad = table.weight.grad
        np.testing.assert_allclose(grad[2], 2 * np.ones(3))
        np.testing.assert_allclose(grad[5], np.ones(3))
        np.testing.assert_allclose(grad[0], np.zeros(3))

    def test_reset_padding(self, rng):
        table = Embedding(6, 3, padding_idx=0, rng=rng)
        table.weight.data[0] = 5.0
        table.reset_padding()
        np.testing.assert_allclose(table.weight.data[0], np.zeros(3))


class TestLayerNormModule:
    def test_normalises_last_axis(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(size=(4, 6)) * 3 + 7)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-8)

    def test_has_learnable_scale_and_bias(self):
        layer = LayerNorm(6)
        assert len(layer.parameters()) == 2

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestDropoutModule:
    def test_respects_training_flag(self, rng):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((50,)))
        layer.eval()
        np.testing.assert_allclose(layer(x).data, x.data)
        layer.train()
        assert (layer(x).data == 0).sum() > 10

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequential:
    def test_applies_layers_in_order(self, rng):
        seq = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        out = seq(Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 2)

    def test_len_and_iter(self, rng):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert all(isinstance(layer, ReLU) for layer in seq)

    def test_append(self, rng):
        seq = Sequential(ReLU())
        seq.append(ReLU())
        assert len(seq) == 2


class TestResidualFeedForward:
    def test_output_shape_preserved(self, rng):
        block = ResidualFeedForward(8, num_layers=2, rng=rng)
        out = block(Tensor(rng.normal(size=(3, 8))))
        assert out.shape == (3, 8)

    def test_depth_controls_parameter_count(self, rng):
        shallow = ResidualFeedForward(8, num_layers=1, rng=rng)
        deep = ResidualFeedForward(8, num_layers=3, rng=rng)
        assert deep.num_parameters() == 3 * shallow.num_parameters()

    def test_requires_at_least_one_layer(self, rng):
        with pytest.raises(ValueError):
            ResidualFeedForward(8, num_layers=0, rng=rng)

    def test_residual_identity_at_zero_weights(self, rng):
        block = ResidualFeedForward(4, num_layers=1, rng=rng)
        # Zero the linear layer: the residual branch contributes nothing.
        block.linears[0].weight.data[...] = 0.0
        block.linears[0].bias.data[...] = 0.0
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(block(x).data, x.data)

    def test_no_residual_flag_removes_skip(self, rng):
        block = ResidualFeedForward(4, num_layers=1, use_residual=False, rng=rng)
        block.linears[0].weight.data[...] = 0.0
        block.linears[0].bias.data[...] = 0.0
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(block(x).data, np.zeros((2, 4)))

    def test_gradients_flow_through_block(self, rng):
        block = ResidualFeedForward(4, num_layers=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())
