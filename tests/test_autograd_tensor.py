"""Unit tests for the autograd Tensor: every primitive op is gradient-checked
against central finite differences and the graph mechanics are exercised."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad


def _tensors(rng, *shapes):
    return [Tensor(rng.normal(size=shape), requires_grad=True) for shape in shapes]


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_requires_scalar_like(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_zeros_ones_constructors(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)

    def test_len(self):
        assert len(Tensor([[1.0], [2.0], [3.0]])) == 3


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_requires_scalar_without_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_gradient_accumulates_over_multiple_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        assert x.grad == pytest.approx([7.0])

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_graph_is_not_built_for_non_grad_inputs(self):
        x = Tensor([1.0])
        y = x * 2 + 3
        assert not y.requires_grad

    def test_diamond_graph_gradient(self):
        # z = (x*2) + (x*3); both branches share x.
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2
        b = x * 3
        z = (a * b).sum()  # z = 6x², dz/dx = 12x
        z.backward()
        assert x.grad == pytest.approx([12 * 1.5])


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = _tensors(rng, (3, 4), (3, 4))
        check_gradients(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = _tensors(rng, (3, 4), (4,))
        check_gradients(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_radd_scalar(self, rng):
        (a,) = _tensors(rng, (3,))
        check_gradients(lambda ts: (2.0 + ts[0]).sum(), [a])

    def test_sub(self, rng):
        a, b = _tensors(rng, (2, 3), (2, 3))
        check_gradients(lambda ts: (ts[0] - ts[1]).sum(), [a, b])

    def test_rsub(self, rng):
        (a,) = _tensors(rng, (3,))
        check_gradients(lambda ts: (1.0 - ts[0]).sum(), [a])

    def test_mul(self, rng):
        a, b = _tensors(rng, (2, 3), (2, 3))
        check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_mul_broadcast_scalar_tensor(self, rng):
        a, b = _tensors(rng, (2, 3), (1,))
        check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_div(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.uniform(1.0, 2.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda ts: (ts[0] / ts[1]).sum(), [a, b])

    def test_rtruediv(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda ts: (1.0 / ts[0]).sum(), [a])

    def test_neg(self, rng):
        (a,) = _tensors(rng, (4,))
        check_gradients(lambda ts: (-ts[0]).sum(), [a])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([1.0, 2.0])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda ts: ts[0].sqrt().sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda ts: ts[0].abs().sum(), [a])


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a, b = _tensors(rng, (3, 4), (4, 2))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = _tensors(rng, (2, 3, 4), (2, 4, 5))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched_against_unbatched(self, rng):
        a, b = _tensors(rng, (2, 3, 4), (4, 5))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matvec(self, rng):
        a, b = _tensors(rng, (3, 4), (4,))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_vecmat(self, rng):
        a, b = _tensors(rng, (4,), (4, 3))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_inner_product(self, rng):
        a, b = _tensors(rng, (5,), (5,))
        check_gradients(lambda ts: ts[0].dot(ts[1]), [a, b])

    def test_batched_matvec(self, rng):
        a, b = _tensors(rng, (2, 3, 4), (4,))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose((a @ b).data, a.data)


class TestShapeOps:
    def test_transpose(self, rng):
        (a,) = _tensors(rng, (2, 3, 4))
        check_gradients(lambda ts: ts[0].transpose(2, 0, 1).sum(), [a])

    def test_transpose_default_reverses(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        assert a.T.shape == (3, 2)

    def test_swapaxes(self, rng):
        (a,) = _tensors(rng, (2, 3, 4))
        check_gradients(lambda ts: (ts[0].swapaxes(1, 2) * 2).sum(), [a])

    def test_reshape(self, rng):
        (a,) = _tensors(rng, (2, 6))
        check_gradients(lambda ts: (ts[0].reshape(3, 4) ** 2).sum(), [a])

    def test_reshape_accepts_tuple(self, rng):
        a = Tensor(rng.normal(size=(2, 6)))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_expand_dims_and_squeeze(self, rng):
        (a,) = _tensors(rng, (3, 4))
        check_gradients(lambda ts: (ts[0].expand_dims(1).squeeze(1) * 3).sum(), [a])

    def test_getitem_slice(self, rng):
        (a,) = _tensors(rng, (4, 5))
        check_gradients(lambda ts: (ts[0][1:3, :] ** 2).sum(), [a])

    def test_getitem_fancy_rows(self, rng):
        (a,) = _tensors(rng, (5, 3))
        index = np.array([0, 2, 2, 4])
        check_gradients(lambda ts: (ts[0][index] ** 2).sum(), [a])

    def test_getitem_axis1_fancy(self, rng):
        (a,) = _tensors(rng, (3, 5, 2))
        index = np.array([0, 1, 1, 4])
        check_gradients(lambda ts: (ts[0][:, index, :] ** 2).sum(), [a])

    def test_gather_rows_duplicates_accumulate(self, rng):
        table = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        indices = np.array([[0, 1], [1, 1]])
        out = table.gather_rows(indices)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # Row 1 appears three times, row 0 once, rows 2/3 never.
        np.testing.assert_allclose(table.grad[0], np.ones(3))
        np.testing.assert_allclose(table.grad[1], 3 * np.ones(3))
        np.testing.assert_allclose(table.grad[2], np.zeros(3))

    def test_gather_rows_gradient_check(self, rng):
        table = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        indices = np.array([1, 5, 1, 0])
        check_gradients(lambda ts: (ts[0].gather_rows(indices) ** 2).sum(), [table])


class TestReductions:
    def test_sum_all(self, rng):
        (a,) = _tensors(rng, (3, 4))
        check_gradients(lambda ts: ts[0].sum(), [a])

    def test_sum_axis(self, rng):
        (a,) = _tensors(rng, (3, 4))
        check_gradients(lambda ts: (ts[0].sum(axis=0) ** 2).sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        (a,) = _tensors(rng, (3, 4))
        check_gradients(lambda ts: (ts[0].sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_sum_negative_axis(self, rng):
        (a,) = _tensors(rng, (2, 3, 4))
        check_gradients(lambda ts: (ts[0].sum(axis=-1) ** 2).sum(), [a])

    def test_mean(self, rng):
        (a,) = _tensors(rng, (3, 4))
        check_gradients(lambda ts: (ts[0].mean(axis=1) ** 2).sum(), [a])

    def test_mean_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(a.mean(axis=0).data, a.data.mean(axis=0))

    def test_max_gradient_flows_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestNonlinearities:
    def test_exp(self, rng):
        (a,) = _tensors(rng, (3,))
        check_gradients(lambda ts: ts[0].exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda ts: ts[0].log().sum(), [a])

    def test_relu_gradient(self, rng):
        a = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0])

    def test_sigmoid(self, rng):
        (a,) = _tensors(rng, (4,))
        check_gradients(lambda ts: ts[0].sigmoid().sum(), [a])

    def test_sigmoid_extreme_values_do_not_overflow(self):
        values = Tensor([1000.0, -1000.0]).sigmoid().data
        np.testing.assert_allclose(values, [1.0, 0.0], atol=1e-12)

    def test_tanh(self, rng):
        (a,) = _tensors(rng, (4,))
        check_gradients(lambda ts: ts[0].tanh().sum(), [a])


class TestCombinators:
    def test_concatenate_axis0(self, rng):
        a, b = _tensors(rng, (2, 3), (4, 3))
        check_gradients(lambda ts: (Tensor.concatenate([ts[0], ts[1]], axis=0) ** 2).sum(), [a, b])

    def test_concatenate_axis_last(self, rng):
        a, b = _tensors(rng, (2, 3), (2, 5))
        check_gradients(lambda ts: (Tensor.concatenate([ts[0], ts[1]], axis=-1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _tensors(rng, (2, 3), (2, 3))
        check_gradients(lambda ts: (Tensor.stack([ts[0], ts[1]], axis=0) ** 2).sum(), [a, b])

    def test_where(self, rng):
        a, b = _tensors(rng, (3, 4), (3, 4))
        condition = rng.random((3, 4)) > 0.5
        check_gradients(lambda ts: (Tensor.where(condition, ts[0], ts[1]) ** 2).sum(), [a, b])

    def test_where_values(self):
        out = Tensor.where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])
