"""Tests for the learning-rate schedulers and the significance-testing tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.significance import (
    bootstrap_confidence_interval,
    paired_bootstrap_test,
    per_case_hit_scores,
    sign_test,
)
from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    StepDecayLR,
    WarmupLR,
    lr_history,
)


def _optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestSchedulers:
    def test_constant_keeps_rate(self):
        optimizer = _optimizer(0.05)
        scheduler = ConstantLR(optimizer)
        rates = lr_history(scheduler, 5)
        assert rates == [0.05] * 5

    def test_step_decay_halves_every_step_size(self):
        optimizer = _optimizer(0.8)
        scheduler = StepDecayLR(optimizer, step_size=2, gamma=0.5)
        rates = lr_history(scheduler, 6)
        assert rates[0] == pytest.approx(0.8)
        assert rates[1] == pytest.approx(0.4)   # step 2 → one decay
        assert rates[3] == pytest.approx(0.2)   # step 4 → two decays
        assert rates[5] == pytest.approx(0.1)

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecayLR(_optimizer(), step_size=1, gamma=0.0)

    def test_cosine_annealing_endpoints(self):
        optimizer = _optimizer(1.0)
        scheduler = CosineAnnealingLR(optimizer, total_steps=10, min_lr=0.1)
        rates = lr_history(scheduler, 12)
        assert rates[0] < 1.0                       # already decaying after the first step
        assert rates[9] == pytest.approx(0.1)       # reaches the floor at total_steps
        assert rates[11] == pytest.approx(0.1)      # and stays there
        assert all(earlier >= later - 1e-12 for earlier, later in zip(rates, rates[1:]))

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), total_steps=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), total_steps=5, min_lr=-0.1)

    def test_warmup_ramps_linearly_then_holds(self):
        optimizer = _optimizer(0.4)
        scheduler = WarmupLR(optimizer, warmup_steps=4)
        rates = lr_history(scheduler, 6)
        np.testing.assert_allclose(rates[:4], [0.1, 0.2, 0.3, 0.4])
        assert rates[4] == pytest.approx(0.4)

    def test_warmup_then_inner_schedule(self):
        optimizer = _optimizer(0.4)
        inner = StepDecayLR(optimizer, step_size=1, gamma=0.5)
        scheduler = WarmupLR(optimizer, warmup_steps=2, after=inner)
        rates = lr_history(scheduler, 4)
        assert rates[0] == pytest.approx(0.2)
        assert rates[1] == pytest.approx(0.4)
        assert rates[2] == pytest.approx(0.2)   # inner step 1 → one decay
        assert rates[3] == pytest.approx(0.1)

    def test_scheduler_actually_updates_optimizer(self):
        optimizer = _optimizer(0.4)
        scheduler = StepDecayLR(optimizer, step_size=1, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.04)
        assert scheduler.current_lr == optimizer.lr


class TestBootstrapConfidenceInterval:
    def test_interval_contains_estimate(self):
        scores = np.random.default_rng(0).random(200)
        interval = bootstrap_confidence_interval(scores, seed=1)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.contains(interval.estimate)

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(0)
        small = bootstrap_confidence_interval(rng.random(30), seed=1)
        large = bootstrap_confidence_interval(rng.random(3000), seed=1)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=1.5)


class TestPairedTests:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        base = rng.random(150)
        better = np.clip(base + 0.2, 0, 1)
        comparison = paired_bootstrap_test(better, base, seed=1)
        assert comparison.mean_difference > 0
        assert comparison.significant

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.random(150)
        b = a + rng.normal(0, 1e-3, size=150)
        comparison = paired_bootstrap_test(a, b, seed=1)
        assert not comparison.significant or abs(comparison.mean_difference) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_bootstrap_test([], [])

    def test_sign_test_detects_consistent_winner(self):
        a = np.array([0.6] * 40)
        b = np.array([0.4] * 40)
        comparison = sign_test(a, b)
        assert comparison.significant
        assert comparison.mean_difference == pytest.approx(0.2)

    def test_sign_test_all_ties(self):
        a = np.ones(10)
        comparison = sign_test(a, a.copy())
        assert comparison.p_value == 1.0
        assert not comparison.significant

    def test_per_case_hit_scores(self):
        score_lists = [np.array([3.0, 1.0, 2.0]), np.array([0.0, 9.0, 1.0])]
        hits = per_case_hit_scores(score_lists, [0, 0], k=1)
        np.testing.assert_array_equal(hits, [1.0, 0.0])
