"""Tests for the baseline models: shared-interface contract plus
model-specific behaviour (FM identity, SASRec causality, TFM translation,
DIN candidate conditioning, CIN structure, RRN recurrence)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines import (
    AFM,
    BASELINE_REGISTRY,
    DIN,
    FM,
    HOFM,
    RRN,
    SASRec,
    TFM,
    WideDeep,
    XDeepFM,
)
from repro.core.tasks import make_task_model
from repro.data.features import FeatureBatch
from repro.nn.optim import Adam


@pytest.fixture
def batch(encoder, tiny_log, split):
    examples = encoder.encode_training_instances(split.train)
    return FeatureBatch.from_examples(examples[:10])


def _build(name, encoder, **kwargs):
    cls = BASELINE_REGISTRY[name]
    params = dict(static_vocab_size=encoder.static_vocab_size,
                  dynamic_vocab_size=encoder.dynamic_vocab_size,
                  embed_dim=8, seed=0)
    if name == "SASRec":
        params["max_seq_len"] = encoder.max_seq_len
    params.update(kwargs)
    return cls(**params)


class TestSharedContract:
    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_forward_shape_and_finiteness(self, name, encoder, batch):
        model = _build(name, encoder)
        scores = model.score(batch)
        assert scores.shape == (len(batch),)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_deterministic_given_seed(self, name, encoder, batch):
        a = _build(name, encoder).score(batch)
        b = _build(name, encoder).score(batch)
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_gradients_flow_to_used_parameters(self, name, encoder, batch):
        model = _build(name, encoder)
        loss = (model(batch) ** 2).sum()
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        # Every baseline must propagate gradients into most of its parameters;
        # purely sequential models legitimately skip the static embedding table.
        assert sum(grads) >= len(grads) - 1

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_one_adam_step_reduces_training_loss(self, name, encoder, batch):
        model = _build(name, encoder)
        task = make_task_model(model, "regression")
        optimizer = Adam(model.parameters(), lr=0.01)
        first = task.loss(batch)
        first.backward()
        optimizer.step()
        model.zero_grad()
        second = task.loss(batch)
        assert second.item() < first.item() + 1e-9

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_score_does_not_build_graph(self, name, encoder, batch):
        model = _build(name, encoder)
        scores = model.score(batch)
        assert isinstance(scores, np.ndarray)

    def test_registry_covers_all_paper_baselines(self):
        expected = {"FM", "HOFM", "Wide&Deep", "DeepCross", "NFM", "AFM",
                    "SASRec", "TFM", "DIN", "xDeepFM", "RRN"}
        assert set(BASELINE_REGISTRY) == expected


class TestFM:
    def test_matches_bruteforce_pairwise_interactions(self, encoder, batch):
        """The sum-of-squares trick must equal the explicit Σ_{i<j} ⟨vᵢ,vⱼ⟩."""
        model = FM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=6, seed=1)
        scores = model.score(batch)

        static_table = model.static_embedding.weight.data
        dynamic_table = model.dynamic_embedding.weight.data
        for row in range(len(batch)):
            vectors = [static_table[i] for i in batch.static_indices[row]]
            for position, index in enumerate(batch.dynamic_indices[row]):
                if batch.dynamic_mask[row, position] > 0:
                    vectors.append(dynamic_table[index])
            pairwise = sum(
                float(np.dot(a, b)) for a, b in itertools.combinations(vectors, 2)
            )
            linear = (
                model.global_bias.data[0]
                + model.static_linear.data[batch.static_indices[row]].sum()
                + model.dynamic_linear.data[batch.dynamic_indices[row]][batch.dynamic_mask[row] > 0].sum()
            )
            assert scores[row] == pytest.approx(linear + pairwise, rel=1e-9)

    def test_history_order_does_not_matter(self, encoder, tiny_log):
        """FM treats the history as a set: reversing it must not change the score."""
        model = FM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=6, seed=0)
        history = tiny_log.user_sequence(0)[:4]
        forward = encoder.encode(0, 15, history)
        backward = encoder.encode(0, 15, list(reversed(history)))
        score_forward = model.score(FeatureBatch.from_examples([forward]))
        score_backward = model.score(FeatureBatch.from_examples([backward]))
        np.testing.assert_allclose(score_forward, score_backward, atol=1e-10)


class TestHOFM:
    def test_third_order_term_matches_bruteforce(self, encoder, batch):
        model = HOFM(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                     embed_dim=4, third_order_dim=3, seed=2)
        third = model._third_order(batch).data

        static_table = model.static_embedding3.weight.data
        dynamic_table = model.dynamic_embedding3.weight.data
        for row in range(len(batch)):
            vectors = [static_table[i] for i in batch.static_indices[row]]
            for position, index in enumerate(batch.dynamic_indices[row]):
                if batch.dynamic_mask[row, position] > 0:
                    vectors.append(dynamic_table[index])
            brute = 0.0
            for a, b, c in itertools.combinations(vectors, 3):
                brute += float(np.sum(a * b * c))
            assert third[row] == pytest.approx(brute, rel=1e-8, abs=1e-10)

    def test_has_separate_third_order_tables(self, encoder):
        model = HOFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=4)
        names = dict(model.named_parameters())
        assert "static_embedding3.weight" in names
        assert "dynamic_embedding3.weight" in names


class TestSASRec:
    def test_sequence_order_matters(self, encoder, tiny_log):
        model = SASRec(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                       embed_dim=8, max_seq_len=encoder.max_seq_len, seed=0)
        history = tiny_log.user_sequence(0)[:4]
        forward = encoder.encode(0, 15, history)
        backward = encoder.encode(0, 15, list(reversed(history)))
        a = model.score(FeatureBatch.from_examples([forward]))
        b = model.score(FeatureBatch.from_examples([backward]))
        assert not np.allclose(a, b)

    def test_rejects_overlong_sequence(self, encoder, batch):
        model = SASRec(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                       embed_dim=8, max_seq_len=2, seed=0)
        with pytest.raises(ValueError):
            model(batch)

    def test_candidate_index_mapping(self, encoder, batch):
        model = SASRec(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                       embed_dim=8, max_seq_len=encoder.max_seq_len, seed=0)
        dynamic_indices = model._candidate_dynamic_indices(batch)
        expected = encoder.dynamic_object_index(batch.object_ids)
        np.testing.assert_array_equal(dynamic_indices, expected)


class TestTFM:
    def test_score_decreases_with_distance(self, encoder, tiny_log):
        """A candidate whose embedding sits exactly at (last item + translation)
        must score at least as high as any other candidate (up to linear terms)."""
        model = TFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=4, seed=0)
        model.static_linear.data[...] = 0.0
        model.dynamic_linear.data[...] = 0.0
        model.global_bias.data[...] = 0.0

        history = tiny_log.user_sequence(0)[:3]
        example_a = encoder.encode(0, 14, history)
        example_b = encoder.encode(0, 15, history)
        batch = FeatureBatch.from_examples([example_a, example_b])

        last_index = batch.dynamic_indices[0, -1]
        translation = model.user_translation.weight.data[batch.static_indices[0, 0]]
        target_point = model.dynamic_embedding.weight.data[last_index] + translation
        # Manually move candidate 14's embedding onto the target point.
        candidate_a_index = encoder.dynamic_object_index(np.array([14]))[0]
        model.dynamic_embedding.weight.data[candidate_a_index] = target_point

        scores = model.score(batch)
        assert scores[0] >= scores[1]

    def test_only_last_item_matters(self, encoder, tiny_log):
        """Changing earlier history items must not change the TFM score."""
        model = TFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=4, seed=0)
        model.dynamic_linear.data[...] = 0.0  # linear term would otherwise see them
        sequence = tiny_log.user_sequence(0)
        history_a = sequence[:4]
        history_b = [sequence[4]] + history_a[1:]  # same last item, different earlier items
        a = encoder.encode(0, 15, history_a)
        b = encoder.encode(0, 15, history_b)
        scores = model.score(FeatureBatch.from_examples([a, b]))
        assert scores[0] == pytest.approx(scores[1], rel=1e-9)


class TestDIN:
    def test_candidate_conditioning(self, encoder, tiny_log):
        """DIN's interest vector depends on the candidate: two candidates with the
        same history should produce different deep components."""
        model = DIN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        history = tiny_log.user_sequence(0)[:4]
        a = encoder.encode(0, 14, history)
        b = encoder.encode(0, 15, history)
        scores = model.score(FeatureBatch.from_examples([a, b]))
        assert scores[0] != scores[1]

    def test_history_order_does_not_matter(self, encoder, tiny_log):
        model = DIN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        history = tiny_log.user_sequence(0)[:4]
        forward = encoder.encode(0, 15, history)
        backward = encoder.encode(0, 15, list(reversed(history)))
        scores = model.score(FeatureBatch.from_examples([forward, backward]))
        assert scores[0] == pytest.approx(scores[1], rel=1e-9)


class TestXDeepFM:
    def test_cin_layer_shapes(self, encoder, batch):
        model = XDeepFM(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                        embed_dim=8, cin_layer_sizes=(4, 6), seed=0)
        fields = model._field_embeddings(batch)
        assert fields.shape == (len(batch), 3, 8)
        cin_score = model._cin(fields)
        assert cin_score.shape == (len(batch),)

    def test_cin_weight_count_matches_layers(self, encoder):
        model = XDeepFM(encoder.static_vocab_size, encoder.dynamic_vocab_size,
                        embed_dim=8, cin_layer_sizes=(4, 6, 2), seed=0)
        assert len(model.cin_weights) == 3
        assert model.cin_weights[0].data.shape == (3 * 3, 4)
        assert model.cin_weights[1].data.shape == (4 * 3, 6)


class TestRRN:
    def test_sequence_order_matters(self, encoder, tiny_log):
        model = RRN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        history = tiny_log.user_sequence(0)[:4]
        forward = encoder.encode(0, 15, history)
        backward = encoder.encode(0, 15, list(reversed(history)))
        scores = model.score(FeatureBatch.from_examples([forward, backward]))
        assert scores[0] != scores[1]

    def test_padding_steps_do_not_change_state(self, encoder, tiny_log):
        """Left padding must be a no-op for the recurrent state."""
        model = RRN(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        model.dynamic_linear.data[...] = 0.0
        history_short = tiny_log.user_sequence(0)[:2]   # padded to max_seq_len=4
        example = encoder.encode(0, 15, history_short)
        batch = FeatureBatch.from_examples([example])
        baseline = model.score(batch)
        # Changing the padded slots' indices (mask stays 0) must not matter.
        modified = FeatureBatch(
            static_indices=batch.static_indices,
            dynamic_indices=batch.dynamic_indices.copy(),
            dynamic_mask=batch.dynamic_mask,
            labels=batch.labels, user_ids=batch.user_ids, object_ids=batch.object_ids,
        )
        modified.dynamic_indices[0, :2] = 3
        np.testing.assert_allclose(baseline, model.score(modified), atol=1e-9)


class TestWideDeepAndAFM:
    def test_widedeep_deep_tower_contributes(self, encoder, batch):
        model = WideDeep(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        full_scores = model.score(batch)
        # Zero the last deep layer: scores must change (deep part was active).
        model.deep_tower.layers[-1].weight.data[...] = 0.0
        model.deep_tower.layers[-1].bias.data[...] = 0.0
        assert not np.allclose(full_scores, model.score(batch))

    def test_afm_attention_ignores_padding_pairs(self, encoder, tiny_log):
        model = AFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=6, seed=0)
        model.dynamic_linear.data[...] = 0.0
        history = tiny_log.user_sequence(0)[:2]  # 2 of 4 slots padded
        example = encoder.encode(0, 15, history)
        batch_one = FeatureBatch.from_examples([example])
        baseline = model.score(batch_one)
        modified = FeatureBatch(
            static_indices=batch_one.static_indices,
            dynamic_indices=batch_one.dynamic_indices.copy(),
            dynamic_mask=batch_one.dynamic_mask,
            labels=batch_one.labels, user_ids=batch_one.user_ids, object_ids=batch_one.object_ids,
        )
        modified.dynamic_indices[0, :2] = 2
        np.testing.assert_allclose(baseline, model.score(modified), atol=1e-9)
