"""Tests for the SeqFM model: architecture invariants, causality, ablations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch


def _make_batch(encoder, log, split, count=6):
    examples = encoder.encode_training_instances(split.train)
    return FeatureBatch.from_examples(examples[:count])


class TestForward:
    def test_output_shape(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        scores = seqfm_model(batch)
        assert scores.shape == (len(batch),)

    def test_score_matches_eval_forward(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        seqfm_model.eval()
        forward_scores = seqfm_model(batch).data
        score_scores = seqfm_model.score(batch)
        np.testing.assert_allclose(forward_scores, score_scores)

    def test_score_restores_training_mode(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        seqfm_model.train()
        seqfm_model.score(batch)
        assert seqfm_model.training

    def test_deterministic_given_seed(self, seqfm_config, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        a = SeqFM(seqfm_config).score(batch)
        b = SeqFM(seqfm_config).score(batch)
        np.testing.assert_allclose(a, b)

    def test_different_seed_changes_parameters(self, seqfm_config, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        a = SeqFM(seqfm_config).score(batch)
        b = SeqFM(seqfm_config.with_overrides(seed=99)).score(batch)
        assert not np.allclose(a, b)

    def test_gradients_reach_every_parameter(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        loss = (seqfm_model(batch) ** 2).sum()
        loss.backward()
        for name, parameter in seqfm_model.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"

    def test_view_representations_shapes(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split)
        views = seqfm_model.view_representations(batch)
        assert len(views) == 3
        for view in views:
            assert view.shape == (len(batch), seqfm_model.config.embed_dim)

    def test_repr_mentions_dimensions(self, seqfm_model):
        assert "d=8" in repr(seqfm_model)


class TestCausality:
    """The dynamic view must be causal: the prediction for an instance may not
    depend on *later* history positions being altered — and because padding is
    on the left, altering padded positions must not change anything either."""

    def test_padding_positions_do_not_affect_scores(self, seqfm_model, encoder, tiny_log, split):
        batch = _make_batch(encoder, tiny_log, split, count=4)
        scores_before = seqfm_model.score(batch)
        modified = FeatureBatch(
            static_indices=batch.static_indices.copy(),
            dynamic_indices=batch.dynamic_indices.copy(),
            dynamic_mask=batch.dynamic_mask,
            labels=batch.labels,
            user_ids=batch.user_ids,
            object_ids=batch.object_ids,
        )
        # Replace the content of padded slots with arbitrary (valid) indices.
        padded = modified.dynamic_mask == 0
        modified.dynamic_indices[padded] = 1
        scores_after = seqfm_model.score(modified)
        np.testing.assert_allclose(scores_before, scores_after, atol=1e-8)

    def test_most_recent_item_matters(self, seqfm_model, encoder, tiny_log, split):
        """Swapping the most recent history item should generally change the score."""
        batch = _make_batch(encoder, tiny_log, split, count=4)
        scores_before = seqfm_model.score(batch)
        modified_indices = batch.dynamic_indices.copy()
        last_column = modified_indices[:, -1]
        modified_indices[:, -1] = np.where(last_column == 1, 2, 1)
        modified = FeatureBatch(
            static_indices=batch.static_indices,
            dynamic_indices=modified_indices,
            dynamic_mask=batch.dynamic_mask,
            labels=batch.labels,
            user_ids=batch.user_ids,
            object_ids=batch.object_ids,
        )
        scores_after = seqfm_model.score(modified)
        assert not np.allclose(scores_before, scores_after)

    def test_history_order_matters(self, seqfm_config, encoder, tiny_log):
        """Reversing the dynamic sequence changes the dynamic-view output —
        the whole point of sequence-awareness (a set-category FM would not care)."""
        model = SeqFM(seqfm_config)
        history = tiny_log.user_sequence(0)[:4]
        forward_example = encoder.encode(0, 15, history)
        backward_example = encoder.encode(0, 15, list(reversed(history)))
        forward_score = model.score(FeatureBatch.from_examples([forward_example]))
        backward_score = model.score(FeatureBatch.from_examples([backward_example]))
        assert not np.allclose(forward_score, backward_score)


class TestAblationVariants:
    @pytest.mark.parametrize("overrides,expected_views", [
        ({"use_static_view": False}, 2),
        ({"use_dynamic_view": False}, 2),
        ({"use_cross_view": False}, 2),
        ({"use_static_view": False, "use_cross_view": False}, 1),
    ])
    def test_view_removal_changes_aggregated_dim(self, seqfm_config, encoder, tiny_log, split,
                                                  overrides, expected_views):
        config = seqfm_config.with_overrides(**overrides)
        model = SeqFM(config)
        assert config.num_views() == expected_views
        assert model.projection.data.shape == (expected_views * config.embed_dim,)
        batch = _make_batch(encoder, tiny_log, split, count=3)
        assert model.score(batch).shape == (3,)

    def test_remove_residual_still_runs(self, seqfm_config, encoder, tiny_log, split):
        model = SeqFM(seqfm_config.with_overrides(use_residual=False))
        batch = _make_batch(encoder, tiny_log, split, count=3)
        assert np.isfinite(model.score(batch)).all()

    def test_remove_layer_norm_still_runs(self, seqfm_config, encoder, tiny_log, split):
        model = SeqFM(seqfm_config.with_overrides(use_layer_norm=False))
        batch = _make_batch(encoder, tiny_log, split, count=3)
        assert np.isfinite(model.score(batch)).all()

    def test_separate_ffn_has_more_parameters(self, seqfm_config):
        shared = SeqFM(seqfm_config)
        separate = SeqFM(seqfm_config.with_overrides(share_ffn=False))
        assert separate.num_parameters() > shared.num_parameters()

    def test_last_pooling_variant(self, seqfm_config, encoder, tiny_log, split):
        model = SeqFM(seqfm_config.with_overrides(pooling="last"))
        batch = _make_batch(encoder, tiny_log, split, count=3)
        assert np.isfinite(model.score(batch)).all()

    def test_deeper_ffn_increases_parameters(self, seqfm_config):
        shallow = SeqFM(seqfm_config)
        deep = SeqFM(seqfm_config.with_overrides(ffn_layers=3))
        assert deep.num_parameters() > shallow.num_parameters()


class TestLinearTermAndComplexity:
    def test_linear_term_only_model(self, encoder, tiny_log, split):
        """With zeroed interaction parts the model reduces to bias + linear weights."""
        config = SeqFMConfig(
            static_vocab_size=encoder.static_vocab_size,
            dynamic_vocab_size=encoder.dynamic_vocab_size,
            max_seq_len=encoder.max_seq_len,
            embed_dim=4, dropout=0.0, seed=0,
        )
        model = SeqFM(config)
        model.projection.data[...] = 0.0  # kill the interaction term
        model.global_bias.data[...] = 2.0
        model.static_linear.data[...] = 0.5
        model.dynamic_linear.data[...] = 0.25
        batch = _make_batch(encoder, tiny_log, split, count=4)
        expected = 2.0 + 2 * 0.5 + batch.dynamic_mask.sum(axis=1) * 0.25
        np.testing.assert_allclose(model.score(batch), expected, atol=1e-9)

    def test_parameter_count_scales_linearly_with_vocab(self):
        small = SeqFM(SeqFMConfig(static_vocab_size=50, dynamic_vocab_size=40, embed_dim=8, dropout=0.0))
        large = SeqFM(SeqFMConfig(static_vocab_size=100, dynamic_vocab_size=80, embed_dim=8, dropout=0.0))
        embedding_growth = (large.num_parameters() - small.num_parameters())
        # Growth must come only from embeddings + linear weights: (50+40) × (8+1).
        assert embedding_growth == (50 + 40) * (8 + 1)
