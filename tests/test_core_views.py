"""Tests for the static, dynamic and cross attention views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.views import CrossView, DynamicView, StaticView


class TestStaticView:
    def test_output_shape(self, rng):
        view = StaticView(8, rng=rng)
        out = view(Tensor(rng.normal(size=(4, 2, 8))))
        assert out.shape == (4, 8)

    def test_permutation_invariance(self, rng):
        """Mean pooling over unmasked self-attention is permutation invariant."""
        view = StaticView(6, rng=rng)
        features = rng.normal(size=(1, 4, 6))
        permutation = np.array([2, 0, 3, 1])
        a = view(Tensor(features)).data
        b = view(Tensor(features[:, permutation, :])).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_gradients_flow(self, rng):
        view = StaticView(6, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 6)), requires_grad=True)
        view(x).sum().backward()
        assert x.grad is not None


class TestDynamicView:
    def test_output_shape(self, rng):
        view = DynamicView(8, rng=rng)
        mask = np.ones((4, 5))
        out = view(Tensor(rng.normal(size=(4, 5, 8))), mask)
        assert out.shape == (4, 8)

    def test_invalid_pooling(self, rng):
        with pytest.raises(ValueError):
            DynamicView(8, pooling="max", rng=rng)

    def test_padding_rows_do_not_contribute(self, rng):
        view = DynamicView(4, rng=rng)
        features = rng.normal(size=(1, 5, 4))
        mask_full = np.ones((1, 5))
        mask_padded = np.array([[0.0, 0.0, 1.0, 1.0, 1.0]])
        # Zero the embeddings at the padded slots — as the real encoder does —
        # then the pooled output should only reflect the three valid rows.
        features_padded = features.copy()
        features_padded[0, :2] = 0.0
        out_padded = view(Tensor(features_padded), mask_padded).data
        # Changing the padded slots (which stay masked) must not change the output.
        features_changed = features_padded.copy()
        features_changed[0, :2] = 123.0
        out_changed = view(Tensor(features_changed), mask_padded).data
        np.testing.assert_allclose(out_padded, out_changed, atol=1e-8)
        assert not np.allclose(out_padded, view(Tensor(features), mask_full).data)

    def test_causality_of_positionwise_outputs(self, rng):
        """Internally the attention is causal; with 'last' pooling the output only
        depends on the full prefix, so changing earlier items changes it, but with
        mean pooling over a single valid item it equals the single-item case."""
        view = DynamicView(4, pooling="last", rng=rng)
        features = rng.normal(size=(1, 4, 4))
        mask = np.ones((1, 4))
        baseline = view(Tensor(features), mask).data
        modified = features.copy()
        modified[0, 0] += 5.0
        assert not np.allclose(baseline, view(Tensor(modified), mask).data)

    def test_last_pooling_returns_final_position(self, rng):
        view = DynamicView(4, pooling="last", rng=rng)
        features = Tensor(rng.normal(size=(2, 3, 4)))
        mask = np.ones((2, 3))
        out = view(features, mask)
        assert out.shape == (2, 4)


class TestCrossView:
    def test_output_shape(self, rng):
        view = CrossView(8, rng=rng)
        static = Tensor(rng.normal(size=(3, 2, 8)))
        dynamic = Tensor(rng.normal(size=(3, 5, 8)))
        out = view(static, dynamic, np.ones((3, 5)))
        assert out.shape == (3, 8)

    def test_blocks_within_category_interactions(self, rng):
        """With the cross mask, making all dynamic features identical to each other
        (but keeping the static features fixed) must give the same output as any
        other identical-dynamic configuration only through the cross channel —
        verified here by checking the full-attention variant differs."""
        masked_view = CrossView(4, rng=rng)
        full_view = CrossView(4, full_attention=True, rng=rng)
        # Share weights so the only difference is the mask.
        full_view.attention.w_query.data[...] = masked_view.attention.w_query.data
        full_view.attention.w_key.data[...] = masked_view.attention.w_key.data
        full_view.attention.w_value.data[...] = masked_view.attention.w_value.data

        static = Tensor(rng.normal(size=(1, 2, 4)))
        dynamic = Tensor(rng.normal(size=(1, 3, 4)))
        mask = np.ones((1, 3))
        assert not np.allclose(masked_view(static, dynamic, mask).data,
                               full_view(static, dynamic, mask).data)

    def test_gradients_flow_to_both_inputs(self, rng):
        view = CrossView(4, rng=rng)
        static = Tensor(rng.normal(size=(2, 2, 4)), requires_grad=True)
        dynamic = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        view(static, dynamic, np.ones((2, 3))).sum().backward()
        assert static.grad is not None
        assert dynamic.grad is not None

    def test_padding_keys_are_masked(self, rng):
        view = CrossView(4, rng=rng)
        static = Tensor(rng.normal(size=(1, 2, 4)))
        dynamic_data = rng.normal(size=(1, 4, 4))
        dynamic_data[0, :2] = 0.0
        mask = np.array([[0.0, 0.0, 1.0, 1.0]])
        baseline = view(static, Tensor(dynamic_data), mask).data
        changed = dynamic_data.copy()
        changed[0, :2] = 7.0
        after = view(static, Tensor(changed), mask).data
        np.testing.assert_allclose(baseline, after, atol=1e-8)
