"""The interprocedural concurrency rules on fixture snippets.

``lock-order`` is exercised on genuine 2-lock inversions (lexical,
annotation-propagated, call-chain-propagated, and declared via
``lock-edge`` comments), on the consistently-ordered nesting that must
*not* be flagged, and on self-deadlocks (plain ``Lock`` vs reentrant
``RLock``).  ``blocking-under-lock`` pins the fsync-under-lock and
``Future.result``-under-lock shapes plus the transitive-callee and
annotated-helper reporting contracts.  ``shared-state-drift`` covers the
undeclared-but-consistently-locked inference and every staleness shape.
The real-tree tests at the bottom keep the repo's own static lock graph
acyclic and its intended edges present.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import (
    BlockingUnderLockRule,
    LockDisciplineRule,
    LockOrderRule,
    SharedStateDriftRule,
    analyze,
    static_lock_edges,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def run(tmp_path, files, rules, baseline=()):
    """Write ``files`` (path → snippet) under tmp_path and analyze them."""
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze([tmp_path], rules, root=tmp_path, baseline=list(baseline))


# --------------------------------------------------------------------------- #
# lock-order: cycles
# --------------------------------------------------------------------------- #
class TestLockOrderCycles:
    def test_two_lock_inversion_across_methods_is_a_deadlock_finding(
            self, tmp_path):
        report = run(tmp_path, {"pair.py": """\
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """}, [LockOrderRule()])
        assert [f.rule for f in report.findings] == ["lock-order"]
        message = report.findings[0].message
        assert "potential deadlock" in message
        assert "Pair._a_lock -> Pair._b_lock" in message
        assert "Pair._b_lock -> Pair._a_lock" in message
        # The finding names the functions that witness each hop.
        assert "Pair.forward" in message and "Pair.backward" in message

    def test_annotation_propagated_cycle_is_found(self, tmp_path):
        # _drain never takes _lock lexically: the '# repro: locked' entry
        # contract is what puts _lock under the _flush_lock acquisition.
        report = run(tmp_path, {"store.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._flush_lock = threading.Lock()

                def _drain(self):  # repro: locked[_lock]
                    with self._flush_lock:
                        pass

                def flush(self):
                    with self._flush_lock:
                        with self._lock:
                            pass
            """}, [LockOrderRule()])
        assert [f.rule for f in report.findings] == ["lock-order"]
        assert "Store._flush_lock" in report.findings[0].message
        assert "Store._lock" in report.findings[0].message

    def test_call_chain_propagated_cycle_is_found(self, tmp_path):
        # Neither method nests two with-blocks; only the propagation of
        # held-lock sets through self-calls exposes the inversion.
        report = run(tmp_path, {"pipe.py": """\
            import threading

            class Pipe:
                def __init__(self):
                    self._in_lock = threading.Lock()
                    self._out_lock = threading.Lock()

                def push(self):
                    with self._in_lock:
                        self._emit()

                def _emit(self):
                    with self._out_lock:
                        pass

                def pull(self):
                    with self._out_lock:
                        self._absorb()

                def _absorb(self):
                    with self._in_lock:
                        pass
            """}, [LockOrderRule()])
        assert [f.rule for f in report.findings] == ["lock-order"]
        message = report.findings[0].message
        assert "Pipe._in_lock" in message and "Pipe._out_lock" in message

    def test_declared_lock_edge_comment_closes_a_cycle(self, tmp_path):
        # The AST sees _lock -> _journal_lock; the callback-mediated
        # reverse acquisition is declared — together they deadlock.
        report = run(tmp_path, {"journal.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._journal_lock = threading.Lock()

                def put(self):
                    with self._lock:
                        with self._journal_lock:
                            pass

            # the journal calls back into the store under its own lock:
            # repro: lock-edge[Store._journal_lock -> Store._lock]
            """}, [LockOrderRule()])
        assert [f.rule for f in report.findings] == ["lock-order"]
        assert "Store._journal_lock" in report.findings[0].message

    def test_consistent_nesting_order_is_not_flagged(self, tmp_path):
        report = run(tmp_path, {"consistent.py": """\
            import threading

            class Consistent:
                def __init__(self):
                    self._first_lock = threading.Lock()
                    self._second_lock = threading.Lock()

                def a(self):
                    with self._first_lock:
                        with self._second_lock:
                            pass

                def b(self):
                    with self._first_lock:
                        with self._second_lock:
                            pass
            """}, [LockOrderRule()])
        assert report.ok and not report.findings

    def test_self_deadlock_on_plain_lock_via_call_chain(self, tmp_path):
        report = run(tmp_path, {"naive.py": """\
            import threading

            class Naive:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """}, [LockOrderRule()])
        assert [f.rule for f in report.findings] == ["lock-order"]
        message = report.findings[0].message
        assert "self-deadlock" in message and "Naive.inner" in message

    def test_reentrant_rlock_is_not_a_self_deadlock(self, tmp_path):
        report = run(tmp_path, {"naive.py": """\
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """}, [LockOrderRule()])
        assert report.ok and not report.findings


# --------------------------------------------------------------------------- #
# blocking-under-lock
# --------------------------------------------------------------------------- #
class TestBlockingUnderLock:
    def test_fsync_and_file_write_under_lock_are_flagged(self, tmp_path):
        report = run(tmp_path, {"log.py": """\
            import os
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._file = open("log", "ab")

                def append(self, data):
                    with self._lock:
                        self._file.write(data)
                        os.fsync(self._file.fileno())
            """}, [BlockingUnderLockRule()])
        assert [(f.rule, f.line) for f in report.findings] == \
            [("blocking-under-lock", 11), ("blocking-under-lock", 12)]
        assert "os.fsync()" in report.findings[1].message
        assert "Log._lock" in report.findings[1].message

    def test_future_result_under_pending_lock_is_flagged(self, tmp_path):
        report = run(tmp_path, {"router.py": """\
            import threading

            class Router:
                def __init__(self):
                    self._pending_lock = threading.Lock()

                def wait_one(self, future):
                    with self._pending_lock:
                        return future.result()
            """}, [BlockingUnderLockRule()])
        assert [f.line for f in report.findings] == [9]
        assert ".result()" in report.findings[0].message
        assert "Router._pending_lock" in report.findings[0].message

    def test_transitively_blocking_callee_is_flagged_at_the_call(
            self, tmp_path):
        report = run(tmp_path, {"log.py": """\
            import os
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):
                    with self._lock:
                        self._write_all()

                def _write_all(self):
                    os.fsync(1)
            """}, [BlockingUnderLockRule()])
        assert [f.line for f in report.findings] == [10]
        assert "Log._write_all" in report.findings[0].message
        assert "blocking I/O" in report.findings[0].message

    def test_annotated_helper_reports_once_at_its_own_definition(
            self, tmp_path):
        # The '# repro: locked' contract moves the report to the helper;
        # callers that hold the lock are not re-flagged for the same I/O.
        report = run(tmp_path, {"log.py": """\
            import os
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()

                def _sync(self):  # repro: locked[_lock]
                    os.fsync(1)

                def flush(self):
                    with self._lock:
                        self._sync()
            """}, [BlockingUnderLockRule()])
        assert [f.line for f in report.findings] == [9]
        assert "Log._sync" in report.findings[0].message

    def test_allow_comment_suppresses_a_deliberate_fsync(self, tmp_path):
        report = run(tmp_path, {"wal.py": """\
            import os
            import threading

            class Wal:
                def __init__(self):
                    self._lock = threading.Lock()

                def sync(self, fd):
                    with self._lock:
                        os.fsync(fd)  # repro: allow[blocking-under-lock]
            """}, [BlockingUnderLockRule()])
        assert report.ok and len(report.suppressed) == 1

    def test_string_join_and_unlocked_sleep_are_not_flagged(self, tmp_path):
        report = run(tmp_path, {"misc.py": """\
            import threading
            import time

            class Render:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._parts = []

                def text(self):
                    with self._lock:
                        return ", ".join(self._parts)

                def idle(self):
                    time.sleep(0.01)
            """}, [BlockingUnderLockRule()])
        assert report.ok and not report.findings


# --------------------------------------------------------------------------- #
# shared-state-drift
# --------------------------------------------------------------------------- #
def drift_rule(shared_state):
    """The rule against an explicit map, anchor check relaxed for tmp trees."""
    return SharedStateDriftRule(shared_state=shared_state, require_anchor=False)


STORE_SNIPPET = """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def drop(self, key):
            with self._lock:
                self._items.pop(key)
    """


class TestSharedStateDrift:
    def test_consistently_locked_attribute_is_suggested(self, tmp_path):
        report = run(tmp_path, {"store.py": STORE_SNIPPET}, [drift_rule({})])
        assert [f.rule for f in report.findings] == ["shared-state-drift"]
        message = report.findings[0].message
        assert "Store._items" in message
        assert '"_items": "_lock"' in message

    def test_declared_attribute_is_not_suggested(self, tmp_path):
        report = run(tmp_path, {"store.py": STORE_SNIPPET},
                     [drift_rule({"store.py": {"Store": {"_items": "_lock"}}})])
        assert report.ok and not report.findings

    def test_mixed_locked_and_unlocked_writes_are_not_suggested(
            self, tmp_path):
        # The inference only proposes attributes whose *every* mutation is
        # under the same lock; an unlocked write is lock-discipline's beat.
        report = run(tmp_path, {"store.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def reset(self):
                    self._items = {}
            """}, [drift_rule({})])
        assert report.ok and not report.findings

    def test_stale_module_class_and_attribute_entries_are_reported(
            self, tmp_path):
        report = run(tmp_path, {"store.py": STORE_SNIPPET}, [drift_rule({
            "gone.py": {"X": {"_y": "_lock"}},
            "store.py": {
                "Ghost": {"_x": "_lock"},
                "Store": {"_items": "_lock", "_gone": "_lock"},
            },
        })])
        messages = "\n".join(f.message for f in report.findings)
        assert len(report.findings) == 3
        assert "no module matches 'gone.py'" in messages
        assert "'Ghost' not found" in messages
        assert "'Store._gone' is never assigned" in messages


# --------------------------------------------------------------------------- #
# '# repro: locked' above decorators (the lock-discipline regression)
# --------------------------------------------------------------------------- #
class TestAnnotationAboveDecorator:
    RULE = LockDisciplineRule(
        shared_state={"store.py": {"Store": {"_items": "_lock"}}})

    def test_annotation_above_decorated_method_is_honoured(self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                # repro: locked[_lock]
                @property
                def head(self):
                    return self._items.pop(0)
            """}, [self.RULE])
        assert report.ok and not report.findings

    def test_decorated_method_without_annotation_is_still_flagged(
            self, tmp_path):
        report = run(tmp_path, {"store.py": """\
            class Store:
                @property
                def head(self):
                    return self._items.pop(0)
            """}, [self.RULE])
        assert [(f.rule, f.line) for f in report.findings] == \
            [("lock-discipline", 4)]


# --------------------------------------------------------------------------- #
# The call graph behind the rules, via the static-edge surface
# --------------------------------------------------------------------------- #
class TestStaticLockEdges:
    def test_attribute_type_inference_crosses_class_boundaries(self, tmp_path):
        (tmp_path / "pair.py").write_text(textwrap.dedent("""\
            import threading

            class Inner:
                def __init__(self):
                    self._inner_lock = threading.Lock()

                def poke(self):
                    with self._inner_lock:
                        pass

            class Outer:
                def __init__(self):
                    self._outer_lock = threading.Lock()
                    self._inner = Inner()

                def run(self):
                    with self._outer_lock:
                        self._inner.poke()
            """), encoding="utf-8")
        edges = static_lock_edges([tmp_path], root=tmp_path)
        assert ("Outer._outer_lock", "Inner._inner_lock") in edges

    def test_repo_static_lock_graph_is_acyclic(self):
        edges = static_lock_edges([REPO_ROOT / "src"], root=REPO_ROOT)
        adjacency = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
        # Kahn's algorithm: everything drains iff the graph is acyclic.
        nodes = set(adjacency) | {d for ds in adjacency.values() for d in ds}
        indegree = {node: 0 for node in nodes}
        for dsts in adjacency.values():
            for dst in dsts:
                indegree[dst] += 1
        ready = [node for node in nodes if indegree[node] == 0]
        drained = 0
        while ready:
            node = ready.pop()
            drained += 1
            for dst in adjacency.get(node, ()):
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        assert drained == len(nodes), f"cycle among {sorted(edges)}"

    def test_repo_graph_contains_the_intended_serving_edges(self):
        edges = static_lock_edges([REPO_ROOT / "src"], root=REPO_ROOT)
        # The journal callback (declared) and the checkpoint path (derived).
        assert ("UserSequenceStore._lock", "WriteAheadLog._lock") in edges
        assert ("ShardedUserSequenceStore._lock",
                "UserSequenceStore._lock") in edges
        assert ("DurableSequenceStore._checkpoint_lock",
                "WriteAheadLog._lock") in edges
