"""Tests for the Module/Parameter system: discovery, modes, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module, Parameter, Sequential


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(3, 2, rng=np.random.default_rng(0))
        self.extra = Parameter(np.zeros(4), name="extra")
        self.blocks = [Linear(2, 2, rng=np.random.default_rng(1)), Dropout(0.5)]

    def forward(self, x):
        return self.blocks[0](self.linear(x))


class TestParameterDiscovery:
    def test_parameters_found_in_attributes_and_lists(self):
        model = _ToyModel()
        names = dict(model.named_parameters())
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "extra" in names
        assert "blocks.0.weight" in names
        assert len(model.parameters()) == 5

    def test_num_parameters_counts_scalars(self):
        model = _ToyModel()
        expected = 3 * 2 + 2 + 4 + 2 * 2 + 2
        assert model.num_parameters() == expected

    def test_modules_iterates_children(self):
        model = _ToyModel()
        kinds = {type(m).__name__ for m in model.modules()}
        assert {"_ToyModel", "Linear", "Dropout"} <= kinds

    def test_sequential_exposes_nested_parameters(self):
        seq = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), Linear(2, 1, rng=np.random.default_rng(1)))
        assert len(seq.parameters()) == 4


class TestModes:
    def test_train_and_eval_propagate(self):
        model = _ToyModel()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_gradients(self):
        model = _ToyModel()
        for parameter in model.parameters():
            parameter.grad = np.ones_like(parameter.data)
        model.zero_grad()
        assert all(parameter.grad is None for parameter in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model_a = _ToyModel()
        model_b = _ToyModel()
        # Perturb B so the roundtrip actually changes something.
        for parameter in model_b.parameters():
            parameter.data += 1.0
        model_b.load_state_dict(model_a.state_dict())
        for (name_a, parameter_a), (name_b, parameter_b) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(parameter_a.data, parameter_b.data)

    def test_state_dict_is_a_copy(self):
        model = _ToyModel()
        state = model.state_dict()
        state["extra"][...] = 99.0
        assert not np.allclose(model.state_dict()["extra"], 99.0)

    def test_missing_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        del state["extra"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["extra"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


def test_forward_not_implemented_on_base():
    with pytest.raises(NotImplementedError):
        Module().forward()
