"""Tests for the attention-mask builders and the SeqFM configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.masks import NEG_INF, causal_mask, combine_masks, cross_view_mask, padding_key_mask


class TestCausalMask:
    def test_lower_triangle_is_open(self):
        mask = causal_mask(4)
        assert np.all(mask[np.tril_indices(4)] == 0.0)

    def test_upper_triangle_is_blocked(self):
        mask = causal_mask(4)
        assert np.all(mask[np.triu_indices(4, k=1)] == NEG_INF)

    def test_matches_paper_equation_10(self):
        """m_ij = 0 if i >= j else -inf (with row i, column j)."""
        mask = causal_mask(5)
        for i in range(5):
            for j in range(5):
                expected = 0.0 if i >= j else NEG_INF
                assert mask[i, j] == expected

    def test_single_position(self):
        assert causal_mask(1).shape == (1, 1)
        assert causal_mask(1)[0, 0] == 0.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            causal_mask(0)


class TestCrossViewMask:
    def test_matches_paper_equation_13(self):
        num_static, seq_len = 2, 3
        mask = cross_view_mask(num_static, seq_len)
        total = num_static + seq_len
        for i in range(total):
            for j in range(total):
                cross_pair = (i < num_static <= j) or (j < num_static <= i)
                expected = 0.0 if cross_pair else NEG_INF
                assert mask[i, j] == expected

    def test_shape(self):
        assert cross_view_mask(3, 4).shape == (7, 7)

    def test_diagonal_always_blocked(self):
        mask = cross_view_mask(2, 5)
        assert np.all(np.diag(mask) == NEG_INF)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            cross_view_mask(0, 3)
        with pytest.raises(ValueError):
            cross_view_mask(3, 0)


class TestPaddingKeyMask:
    def test_blocks_padding_columns(self):
        valid = np.array([[1.0, 1.0, 0.0]])
        mask = padding_key_mask(valid)
        assert mask.shape == (1, 1, 3)
        assert mask[0, 0, 0] == 0.0
        assert mask[0, 0, 2] == NEG_INF

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            padding_key_mask(np.ones(3))

    def test_combine_masks_floors_at_neg_inf(self):
        combined = combine_masks(causal_mask(3), np.full((3, 3), NEG_INF))
        assert combined.min() >= NEG_INF


class TestSeqFMConfig:
    def _base(self, **overrides):
        params = dict(static_vocab_size=10, dynamic_vocab_size=8)
        params.update(overrides)
        return SeqFMConfig(**params)

    def test_defaults_match_paper_unified_setting(self):
        config = self._base()
        assert config.ffn_layers == 1
        assert config.max_seq_len == 20
        assert config.dropout == 0.6

    def test_num_views(self):
        assert self._base().num_views() == 3
        assert self._base(use_cross_view=False).num_views() == 2
        assert self._base(use_cross_view=False, use_static_view=False).num_views() == 1

    def test_all_views_disabled_rejected(self):
        with pytest.raises(ValueError):
            self._base(use_static_view=False, use_dynamic_view=False, use_cross_view=False)

    def test_with_overrides_returns_new_config(self):
        config = self._base()
        modified = config.with_overrides(embed_dim=64)
        assert modified.embed_dim == 64
        assert config.embed_dim == 32

    @pytest.mark.parametrize("field,value", [
        ("static_vocab_size", 0),
        ("dynamic_vocab_size", 0),
        ("num_static_features", 0),
        ("max_seq_len", 0),
        ("embed_dim", 0),
        ("ffn_layers", 0),
        ("dropout", 1.0),
        ("dropout", -0.1),
        ("pooling", "sum"),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            self._base(**{field: value})
