"""Concurrency battery for the concurrent serving runtime.

Proves the contract of :mod:`repro.serving.concurrent`: for any request
stream, the concurrent responses — re-keyed by envelope ``id`` — are
byte-identical to the serial :class:`~repro.serving.protocol.ServingRouter`
path, at several worker counts, with stateful ``update`` traffic interleaved
against a sharded store; and that the failure modes (a head raising
mid-batch, a stuck worker, more load than the server admits) surface as
structured per-line errors while the stream keeps flowing.
"""

from __future__ import annotations

import io
import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.serving import (
    ConcurrentServingRouter,
    HeadRegistry,
    ModelRegistry,
    ServeSummary,
    ShardedUserSequenceStore,
    UserSequenceStore,
    default_heads,
    serve_concurrent_jsonl,
    serve_jsonl,
)
from repro.serving.protocol import (
    ERR_EXECUTION,
    ERR_OVERLOADED,
    ERR_TIMEOUT,
    ERR_UNKNOWN_MODEL,
    ProtocolError,
    ScoringHead,
)

CONFIG = SeqFMConfig(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=6,
                     embed_dim=8, dropout=0.0, seed=5)

#: Static-vocabulary catalog the recommend head serves (users are 0..9).
CATALOG = list(range(10, 40))


def make_model(seed: int) -> SeqFM:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(seed)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.2, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


def make_registry(cache_shards: int = 1, **kwargs) -> ModelRegistry:
    """Two deterministic models; 'golden' carries an item index."""
    registry = ModelRegistry(cache_shards=cache_shards, **kwargs)
    registry.register("golden", make_model(2))
    registry.register("alt", make_model(3))
    registry.build_index("golden", CATALOG, n_retrieve=len(CATALOG))
    return registry


def mixed_stream(num_lines: int = 100, seed: int = 7) -> list:
    """A deterministic multi-model stream interleaving every head.

    Covers exactly the traffic the parity contract is about: stateless
    scoring/ranking/recommendation against two models, stateful ``update``
    writes, and stored-history reads that must observe those writes in
    stream order.
    """
    rng = np.random.default_rng(seed)
    lines = []
    for i in range(num_lines):
        kind = i % 5
        user_id = int(rng.integers(0, 8))
        history = [int(item) for item in rng.integers(0, 30, size=4)]
        if kind == 0:
            lines.append({"v": 1, "head": "score", "id": f"s{i}", "model": "alt",
                          "payload": {"static_indices": [1, 20],
                                      "history": history, "user_id": user_id}})
        elif kind == 1:
            lines.append({"v": 1, "head": "rank-topk", "id": f"r{i}",
                          "payload": {"static_indices": [3, 10],
                                      "candidates": [14, 15, 16, 17],
                                      "history": history, "k": 2,
                                      "user_id": user_id}})
        elif kind == 2:
            lines.append({"v": 1, "head": "update", "id": f"u{i}",
                          "payload": {"user_id": user_id,
                                      "events": [int(rng.integers(0, 30))]}})
        elif kind == 3:
            lines.append({"v": 1, "head": "recommend", "id": f"c{i}",
                          "payload": {"static_indices": [2, 11],
                                      "history": history, "k": 3,
                                      "n_retrieve": 8, "user_id": user_id}})
        else:
            # Stored-history read: answered from the server-side sequence
            # the preceding updates and explicit histories established.
            lines.append({"v": 1, "head": "score", "id": f"q{i}",
                          "payload": {"static_indices": [1, 20],
                                      "user_id": user_id}})
    return [json.dumps(line) for line in lines]


def keyed_responses(output: str) -> dict:
    """Response lines re-keyed by envelope id (errors carry the id too)."""
    keyed = {}
    for line in output.splitlines():
        document = json.loads(line)
        key = document.get("id") or document.get("error", {}).get("id")
        if key is None:
            # An unparseable input line has no envelope id; its error still
            # carries the input line number, which identifies it uniquely.
            key = ("line", document["error"]["line"])
        assert key not in keyed, f"duplicate response for {key}"
        keyed[key] = line
    return keyed


def run_serial(lines, registry=None, **kwargs):
    registry = registry if registry is not None else make_registry()
    output = io.StringIO()
    summary = serve_jsonl(registry, "golden",
                          io.StringIO("\n".join(lines) + "\n"), output, **kwargs)
    return summary, keyed_responses(output.getvalue()), registry


def run_concurrent(lines, registry=None, cache_shards=1, **kwargs):
    registry = registry if registry is not None else make_registry(cache_shards)
    output = io.StringIO()
    summary = serve_concurrent_jsonl(registry, "golden",
                                     io.StringIO("\n".join(lines) + "\n"),
                                     output, **kwargs)
    return summary, keyed_responses(output.getvalue()), registry


# --------------------------------------------------------------------------- #
# Heads with injected faults (same wire behaviour, controllable execution)
# --------------------------------------------------------------------------- #
class SlowScoringHead(ScoringHead):
    """A scoring head whose execution takes a configurable time."""

    def __init__(self, delay: float):
        super().__init__("score", "score")
        self.delay = delay

    def execute(self, batcher, requests):
        time.sleep(self.delay)
        return super().execute(batcher, requests)


class PoisonableScoringHead(ScoringHead):
    """Raises mid-batch whenever a request carries the poisoned user id."""

    POISONED_USER = 99

    def __init__(self):
        super().__init__("score", "score")

    def execute(self, batcher, requests):
        if any(request.user_id == self.POISONED_USER for request in requests):
            raise RuntimeError("poisoned request reached the engine")
        return super().execute(batcher, requests)


def heads_with(head) -> HeadRegistry:
    registry = HeadRegistry(list(default_heads()))
    registry.register(head, overwrite=True)
    return registry


def score_lines(count, user_id=lambda i: i % 4):
    return [json.dumps({"v": 1, "head": "score", "id": f"s{i}",
                        "payload": {"static_indices": [1, 20], "history": [1, 2],
                                    "user_id": user_id(i)}})
            for i in range(count)]


# --------------------------------------------------------------------------- #
# The parity contract (the concurrency stress test)
# --------------------------------------------------------------------------- #
class TestConcurrentParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_mixed_stream_is_byte_identical_to_serial(self, workers):
        lines = mixed_stream(100)
        serial_summary, serial, _ = run_serial(lines)
        assert serial_summary.errors == 0
        summary, concurrent, _ = run_concurrent(lines, cache_shards=3,
                                                workers=workers)
        assert set(concurrent) == set(serial)
        for key in serial:
            assert concurrent[key] == serial[key], key
        assert summary.lines == serial_summary.lines
        assert summary.rows == serial_summary.rows
        assert summary.errors == 0

    def test_update_then_stored_read_sees_serial_order(self):
        # Dense stateful traffic on a single user: every stored read must
        # reflect exactly the updates (and explicit-history overwrites)
        # that precede it in the stream — the barrier contract.
        lines = []
        for i in range(30):
            if i % 3 == 0:
                lines.append(json.dumps({"v": 1, "head": "update", "id": f"u{i}",
                                         "payload": {"user_id": 1, "events": [i % 29]}}))
            elif i % 3 == 1:
                lines.append(json.dumps({"v": 1, "head": "score", "id": f"w{i}",
                                         "payload": {"static_indices": [1, 20],
                                                     "history": [i % 29, 5],
                                                     "user_id": 1}}))
            else:
                lines.append(json.dumps({"v": 1, "head": "score", "id": f"q{i}",
                                         "payload": {"static_indices": [1, 20],
                                                     "user_id": 1}}))
        _, serial, serial_registry = run_serial(lines)
        _, concurrent, concurrent_registry = run_concurrent(
            lines, cache_shards=2, workers=4)
        assert concurrent == serial
        # The final server-side sequence matches too, not just the responses.
        serial_store = serial_registry.get("golden").sequence_store
        concurrent_store = concurrent_registry.get("golden").sequence_store
        assert concurrent_store.history(1) == serial_store.history(1)

    def test_final_store_state_matches_serial(self):
        lines = mixed_stream(60)
        _, _, serial_registry = run_serial(lines)
        _, _, concurrent_registry = run_concurrent(lines, cache_shards=3,
                                                   workers=4)
        serial_store = serial_registry.get("golden").sequence_store
        concurrent_store = concurrent_registry.get("golden").sequence_store
        for user_id in range(8):
            assert concurrent_store.history(user_id) == serial_store.history(user_id)

    def test_coalesced_scoring_matches_serial_numerically(self):
        # Coalescing merges requests from different envelopes into one BLAS
        # batch; summation order inside the kernels changes, so the contract
        # weakens from byte-identity to numerical agreement.
        lines = score_lines(64, user_id=lambda i: i % 8)
        _, serial, _ = run_serial(lines)
        _, concurrent, _ = run_concurrent(lines, workers=2, coalesce=True)
        assert set(concurrent) == set(serial)
        for key in serial:
            expected = json.loads(serial[key])["result"]["score"]
            actual = json.loads(concurrent[key])["result"]["score"]
            assert actual == pytest.approx(expected, abs=1e-9)

    def test_coalesced_list_heads_stay_byte_identical(self):
        # rank-topk executes per request even inside a merged batch, so
        # coalescing it keeps byte-for-byte parity.
        rng = np.random.default_rng(3)
        lines = [json.dumps({"v": 1, "head": "rank-topk", "id": f"r{i}",
                             "payload": {"static_indices": [3, 10],
                                         "candidates": [14, 15, 16, 17],
                                         "history": [int(x) for x in rng.integers(0, 30, size=3)],
                                         "k": 2, "user_id": i % 5}})
                 for i in range(40)]
        _, serial, _ = run_serial(lines)
        _, concurrent, _ = run_concurrent(lines, workers=4, coalesce=True)
        assert concurrent == serial

    def test_error_lines_match_serial(self):
        lines = [
            json.dumps({"v": 1, "head": "score", "id": "ok",
                        "payload": {"static_indices": [1, 20], "history": [1],
                                    "user_id": 0}}),
            "{not json",
            json.dumps({"v": 1, "head": "nope", "id": "bad-head", "payload": {}}),
            json.dumps({"v": 1, "head": "score", "model": "ghost", "id": "bad-model",
                        "payload": {"static_indices": [1, 20]}}),
            json.dumps({"v": 1, "head": "score", "id": "bad-req",
                        "payload": {"history": [1]}}),
        ]
        serial_summary, serial, _ = run_serial(lines)
        summary, concurrent, _ = run_concurrent(lines, workers=2)
        # The unparseable line carries no id; compare it by its line number.
        assert summary.error_codes == serial_summary.error_codes
        for key in serial:
            assert concurrent[key] == serial[key]


# --------------------------------------------------------------------------- #
# Fault injection: raising heads, stuck workers, overload
# --------------------------------------------------------------------------- #
class TestFaultInjection:
    def test_raising_head_poisons_only_its_line(self):
        poisoned = PoisonableScoringHead.POISONED_USER
        lines = score_lines(12, user_id=lambda i: poisoned if i == 5 else i % 3)
        registry = make_registry()
        output = io.StringIO()
        summary = serve_concurrent_jsonl(
            registry, "golden", io.StringIO("\n".join(lines) + "\n"), output,
            workers=2, heads=heads_with(PoisonableScoringHead()))
        responses = keyed_responses(output.getvalue())
        assert len(responses) == 12
        errors = {key: json.loads(line) for key, line in responses.items()
                  if "error" in json.loads(line)}
        assert set(errors) == {"s5"}
        assert errors["s5"]["error"]["code"] == ERR_EXECUTION
        assert summary.error_codes == {ERR_EXECUTION: 1}
        assert summary.rows == 11

    def test_raising_head_inside_coalesced_batch_spares_neighbours(self):
        poisoned = PoisonableScoringHead.POISONED_USER
        lines = score_lines(12, user_id=lambda i: poisoned if i == 5 else i % 3)
        registry = make_registry()
        output = io.StringIO()
        summary = serve_concurrent_jsonl(
            registry, "golden", io.StringIO("\n".join(lines) + "\n"), output,
            workers=2, coalesce=True, heads=heads_with(PoisonableScoringHead()))
        responses = keyed_responses(output.getvalue())
        assert len(responses) == 12
        errors = [key for key, line in responses.items()
                  if "error" in json.loads(line)]
        assert errors == ["s5"]
        assert summary.error_codes == {ERR_EXECUTION: 1}

    def test_stuck_worker_surfaces_timeout_instead_of_hanging(self):
        lines = score_lines(6)
        registry = make_registry()
        output = io.StringIO()
        started = time.monotonic()
        summary = serve_concurrent_jsonl(
            registry, "golden", io.StringIO("\n".join(lines) + "\n"), output,
            workers=2, timeout=0.05, heads=heads_with(SlowScoringHead(5.0)))
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, "the stream waited on a stuck worker"
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(responses) == 6
        assert all(r["error"]["code"] == ERR_TIMEOUT for r in responses)
        assert summary.error_codes == {ERR_TIMEOUT: 6}

    def test_overload_rejects_with_structured_code(self):
        lines = score_lines(20)
        registry = make_registry()
        output = io.StringIO()
        summary = serve_concurrent_jsonl(
            registry, "golden", io.StringIO("\n".join(lines) + "\n"), output,
            workers=1, max_inflight=2, heads=heads_with(SlowScoringHead(0.05)))
        assert summary.error_codes.get(ERR_OVERLOADED, 0) > 0
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(responses) == 20
        overloaded = [r for r in responses
                      if r.get("error", {}).get("code") == ERR_OVERLOADED]
        served = [r for r in responses if "error" not in r]
        assert len(overloaded) == summary.error_codes[ERR_OVERLOADED]
        # Admitted lines were still answered: rejection sheds load, it does
        # not corrupt the stream.
        assert len(served) == 20 - len(overloaded)
        assert summary.rows == len(served)

    def test_router_submit_raises_overloaded_protocol_error(self):
        registry = make_registry()
        router = ConcurrentServingRouter(
            registry, default_model="golden", max_inflight=1, workers=1,
            heads=heads_with(SlowScoringHead(0.2)))
        try:
            from repro.serving.protocol import parse_envelope
            envelope = parse_envelope(
                {"v": 1, "head": "score",
                 "payload": {"static_indices": [1, 20], "history": [1],
                             "user_id": 0}}, default_head="score",
                default_model="golden")
            done = []
            router.submit(envelope, 1, lambda *args: done.append(args))
            with pytest.raises(ProtocolError) as excinfo:
                router.submit(envelope, 2, lambda *args: done.append(args))
            assert excinfo.value.code == ERR_OVERLOADED
            router.drain()
            assert len(done) == 1
        finally:
            router.close()

    def test_unknown_model_rejected_at_submit(self):
        registry = make_registry()
        router = ConcurrentServingRouter(registry, default_model="golden",
                                         workers=1)
        try:
            from repro.serving.protocol import parse_envelope
            envelope = parse_envelope(
                {"v": 1, "head": "score", "model": "ghost",
                 "payload": {"static_indices": [1, 20]}},
                default_head="score", default_model="golden")
            with pytest.raises(ProtocolError) as excinfo:
                router.submit(envelope, 1, lambda *args: None)
            assert excinfo.value.code == ERR_UNKNOWN_MODEL
        finally:
            router.close()


# --------------------------------------------------------------------------- #
# The process-pool fallback
# --------------------------------------------------------------------------- #
class TestProcessPoolFallback:
    def test_process_executor_matches_serial(self, tmp_path):
        checkpoint = tmp_path / "golden.npz"
        seed_registry = ModelRegistry()
        seed_registry.register("golden", make_model(2))
        seed_registry.save("golden", checkpoint)

        lines = []
        rng = np.random.default_rng(11)
        for i in range(24):
            user_id = int(rng.integers(0, 5))
            if i % 4 == 3:
                lines.append(json.dumps({"v": 1, "head": "score", "id": f"q{i}",
                                         "payload": {"static_indices": [1, 20],
                                                     "user_id": user_id}}))
            else:
                history = [int(x) for x in rng.integers(0, 30, size=4)]
                lines.append(json.dumps({"v": 1, "head": "score", "id": f"s{i}",
                                         "payload": {"static_indices": [1, 20],
                                                     "history": history,
                                                     "user_id": user_id}}))

        def loaded_registry():
            registry = ModelRegistry()
            registry.load("golden", checkpoint)
            return registry

        _, serial, _ = run_serial(lines, registry=loaded_registry())
        summary, concurrent, _ = run_concurrent(
            lines, registry=loaded_registry(), workers=2,
            executors={"golden": "process"})
        assert summary.errors == 0
        assert concurrent == serial

    def test_process_executor_requires_a_checkpoint(self):
        registry = make_registry()  # in-memory models, no source path
        with pytest.raises(ValueError, match="process pool"):
            ConcurrentServingRouter(registry, default_model="golden",
                                    executors={"golden": "process"})

    def test_executor_kind_is_validated(self):
        registry = make_registry()
        with pytest.raises(ValueError, match="'thread' or 'process'"):
            ConcurrentServingRouter(registry, default_model="golden",
                                    executors={"golden": "gpu"})


# --------------------------------------------------------------------------- #
# ServeSummary thread-safety (the aggregation fix)
# --------------------------------------------------------------------------- #
class TestServeSummaryThreadSafety:
    def test_contended_counters_sum_exactly(self):
        summary = ServeSummary()
        threads, per_thread = 8, 500

        def hammer():
            for i in range(per_thread):
                summary.record_line()
                summary.record_rows(2)
                summary.record_error("execution_error" if i % 2 else "timeout")

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert summary.lines == threads * per_thread
        assert summary.rows == threads * per_thread * 2
        assert summary.errors == threads * per_thread
        assert summary.error_codes["execution_error"] == threads * per_thread // 2
        assert summary.error_codes["timeout"] == threads * per_thread // 2

    def test_merge_accumulates_every_counter(self):
        first, second = ServeSummary(), ServeSummary()
        first.record_line()
        first.record_rows(3)
        second.record_line()
        second.record_error("overloaded")
        first.merge(second)
        assert first.lines == 2
        assert first.rows == 3
        assert first.errors == 1
        assert first.error_codes == {"overloaded": 1}

    def test_merge_into_itself_is_rejected(self):
        summary = ServeSummary()
        with pytest.raises(ValueError):
            summary.merge(summary)


# --------------------------------------------------------------------------- #
# The sharded store
# --------------------------------------------------------------------------- #
class TestShardedStore:
    def test_same_surface_as_single_store(self):
        store = ShardedUserSequenceStore(max_seq_len=6, capacity=64, shards=4)
        indices, mask = store.encode(3, [1, 2, 3])
        single = UserSequenceStore(max_seq_len=6, capacity=64)
        expected_indices, expected_mask = single.encode(3, [1, 2, 3])
        np.testing.assert_array_equal(indices, expected_indices)
        np.testing.assert_array_equal(mask, expected_mask)
        store.record(7, [4, 5])
        store.append_event(7, 6)
        assert store.history(7) == (4, 5, 6)
        assert 7 in store and len(store) == 2

    def test_placement_is_stable_and_complete(self):
        store = ShardedUserSequenceStore(max_seq_len=4, shards=5)
        placement = {user_id: store.shard_for(user_id) for user_id in range(200)}
        assert set(placement.values()) <= set(store.shard_ids())
        # Deterministic: a second store with the same topology agrees.
        twin = ShardedUserSequenceStore(max_seq_len=4, shards=5)
        assert all(twin.shard_for(user_id) == shard
                   for user_id, shard in placement.items())

    def test_add_shard_only_remaps_keys_it_takes_over(self):
        store = ShardedUserSequenceStore(max_seq_len=4, shards=4)
        before = {user_id: store.shard_for(user_id) for user_id in range(300)}
        store.add_shard("overflow")
        for user_id, shard in before.items():
            after = store.shard_for(user_id)
            assert after == shard or after == "overflow"

    def test_remove_shard_returns_snapshot_and_remaps_only_its_keys(self):
        store = ShardedUserSequenceStore(max_seq_len=4, shards=4)
        before = {user_id: store.shard_for(user_id) for user_id in range(300)}
        victim = store.shard_ids()[0]
        store.record(17, [1, 2])
        snapshot = store.remove_shard(victim)
        assert set(snapshot) == {"max_seq_len", "capacity", "ttl", "entries"}
        for user_id, shard in before.items():
            if shard != victim:
                assert store.shard_for(user_id) == shard
        with pytest.raises(KeyError):
            store.snapshot(victim)

    def test_removed_shard_can_be_rehomed(self):
        store = ShardedUserSequenceStore(max_seq_len=6, shards=3)
        users = [user_id for user_id in range(60)
                 if store.shard_for(user_id) == store.shard_ids()[0]]
        for user_id in users:
            store.record(user_id, [user_id % 29, 1])
        victim = store.shard_ids()[0]
        snapshot = store.remove_shard(victim)
        assert all(store.history(user_id) is None or store.shard_for(user_id) != victim
                   for user_id in users)
        store.add_shard(victim, snapshot=snapshot)
        for user_id in users:
            assert store.history(user_id) == (user_id % 29, 1)

    def test_whole_store_snapshot_round_trips(self):
        store = ShardedUserSequenceStore(max_seq_len=6, capacity=32, shards=3)
        for user_id in range(20):
            store.record(user_id, [user_id % 29, (user_id + 1) % 29])
        snapshot = store.snapshot()
        clone = ShardedUserSequenceStore(max_seq_len=6, capacity=32, shards=3)
        clone.restore(snapshot)
        for user_id in range(20):
            assert clone.history(user_id) == store.history(user_id)
        assert len(clone) == len(store)

    def test_whole_store_restore_requires_matching_topology(self):
        store = ShardedUserSequenceStore(max_seq_len=6, shards=3)
        snapshot = store.snapshot()
        other = ShardedUserSequenceStore(max_seq_len=6, shards=4)
        with pytest.raises(ValueError, match="shard ids"):
            other.restore(snapshot)

    def test_restore_rejects_mismatched_geometry(self):
        store = ShardedUserSequenceStore(max_seq_len=6, shards=2)
        store.record(1, [1, 2])
        snapshot = store.snapshot(store.shard_for(1))
        other = ShardedUserSequenceStore(max_seq_len=8, shards=2)
        with pytest.raises(ValueError, match="max_seq_len"):
            other.restore(snapshot, shard_id=other.shard_ids()[0])

    def test_cannot_remove_last_shard(self):
        store = ShardedUserSequenceStore(max_seq_len=4, shards=1)
        with pytest.raises(ValueError, match="last shard"):
            store.remove_shard(store.shard_ids()[0])

    def test_per_shard_ttl_matches_single_store(self):
        clock = {"now": 0.0}
        sharded = ShardedUserSequenceStore(max_seq_len=6, capacity=512, ttl=10.0,
                                           clock=lambda: clock["now"], shards=3)
        single = UserSequenceStore(max_seq_len=6, capacity=512, ttl=10.0,
                                   clock=lambda: clock["now"])
        for store in (sharded, single):
            store.record(1, [1, 2])
            store.record(2, [3])
        clock["now"] = 5.0
        for store in (sharded, single):
            store.append_event(2, 4)  # refreshes user 2's stamp
        clock["now"] = 11.0
        # User 1's entry (stamp 0.0) is expired, user 2's (stamp 5.0) lives.
        assert sharded.history(1) is None and single.history(1) is None
        assert sharded.history(2) == single.history(2) == (3, 4)
        clock["now"] = 20.0
        assert sharded.history(2) is None and single.history(2) is None

    def test_capacity_is_divided_across_shards(self):
        store = ShardedUserSequenceStore(max_seq_len=4, capacity=10, shards=3)
        budgets = [store.snapshot(shard_id)["capacity"]
                   for shard_id in store.shard_ids()]
        assert all(budget == 4 for budget in budgets)  # ceil(10 / 3)

    def test_concurrent_hammering_keeps_entries_consistent(self):
        store = ShardedUserSequenceStore(max_seq_len=6, capacity=256, shards=4)
        errors = []

        def hammer(worker_id):
            try:
                rng = np.random.default_rng(worker_id)
                for _ in range(300):
                    user_id = int(rng.integers(0, 32))
                    history = [int(x) for x in rng.integers(1, 29, size=3)]
                    store.encode(user_id, history)
                    store.record(user_id, [int(rng.integers(1, 29))])
                    stored = store.history(user_id)
                    assert stored is not None and len(stored) <= 6
                    store.encode_stored(user_id)
            except Exception as error:  # noqa: BLE001 — reported to the main thread
                errors.append(error)

        pool = [threading.Thread(target=hammer, args=(worker,))
                for worker in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        stats = store.stats
        assert stats.hits + stats.misses > 0


# --------------------------------------------------------------------------- #
# The registry grows shards
# --------------------------------------------------------------------------- #
class TestRegistrySharding:
    def test_cache_shards_selects_the_sharded_store(self):
        registry = ModelRegistry(cache_shards=3)
        registry.register("m", make_model(2))
        store = registry.get("m").sequence_store
        assert isinstance(store, ShardedUserSequenceStore)
        assert len(store.shard_ids()) == 3

    def test_default_stays_unsharded(self):
        registry = ModelRegistry()
        registry.register("m", make_model(2))
        assert isinstance(registry.get("m").sequence_store, UserSequenceStore)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(cache_shards=0)
