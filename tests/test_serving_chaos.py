"""Chaos battery: deterministic faults against the self-healing runtime.

Every failure here is *injected* — seeded :class:`~repro.serving.faults`
schedules at the runtime's named sites — so each scenario is reproducible
bit-for-bit.  The contract under test is the self-healing half of PR 8:

* retryable faults are retried under :class:`RetryPolicy` and, when the
  retry succeeds, responses stay byte-identical to the serial router;
* exhausted retries answer with the structured ``retryable`` code;
* repeat-offender request bodies are quarantined;
* the :class:`HealthMonitor` / :class:`DegradationPolicy` ladder sheds
  coalescing, cheapens retrieval, then suspends admission — and climbs
  back down as the window drains;
* a crashed worker-process pool is rebuilt a bounded number of times;
* store/WAL fault sites fire *before* mutation, so a failed operation
  leaves durable state untouched and a reopen recovers cleanly.
"""

from __future__ import annotations

import json
from concurrent.futures.process import BrokenProcessPool
from types import SimpleNamespace

import pytest

from repro.serving import (
    ConcurrentServingRouter,
    DegradationPolicy,
    DurableSequenceStore,
    FaultInjector,
    HealthMonitor,
    RetryPolicy,
    TransientFault,
    is_retryable,
    read_wal,
)
from repro.serving.concurrent import HealthSnapshot
from repro.serving.durability import WALError
from repro.serving.faults import InjectedFault
from repro.serving.protocol import (
    ERR_EXECUTION,
    ERR_OVERLOADED,
    ERR_RETRYABLE,
    ProtocolError,
    parse_envelope,
)

from tests.test_serving_concurrent import (
    PoisonableScoringHead,
    heads_with,
    make_registry,
    run_concurrent,
    run_serial,
    score_lines,
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)


# --------------------------------------------------------------------------- #
# The injector and retry policy are deterministic instruments
# --------------------------------------------------------------------------- #
class TestFaultDeterminism:
    def firing_schedule(self, seed: int, hits: int = 60) -> list:
        injector = FaultInjector(seed=seed)
        injector.arm("site", kind="raise", probability=0.5)
        fired = []
        for index in range(hits):
            try:
                injector.hit("site")
            except InjectedFault:
                fired.append(index)
        return fired

    def test_same_seed_same_schedule(self):
        first = self.firing_schedule(seed=7)
        second = self.firing_schedule(seed=7)
        assert first == second
        # A p=0.5 schedule over 60 hits both fires and skips.
        assert 0 < len(first) < 60

    def test_different_seed_different_schedule(self):
        assert self.firing_schedule(seed=7) != self.firing_schedule(seed=8)

    def test_after_and_times_window_the_firings(self):
        injector = FaultInjector(seed=0)
        injector.arm("site", kind="raise", after=2, times=2)
        outcomes = []
        for _ in range(6):
            try:
                injector.hit("site")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]

    def test_backoff_is_bounded_jittered_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05,
                             seed=3)
        for attempt in range(1, 5):
            ceiling = min(policy.max_delay,
                          policy.base_delay * 2 ** (attempt - 1))
            delay = policy.backoff(attempt)
            assert 0.0 <= delay <= ceiling
            # Full jitter is deterministic per (seed, attempt).
            assert delay == RetryPolicy(max_attempts=5, base_delay=0.01,
                                        max_delay=0.05, seed=3).backoff(attempt)

    def test_transient_fault_is_retryable(self):
        assert is_retryable(TransientFault("pool crashed"))
        assert is_retryable(InjectedFault("site", retryable=True))
        assert not is_retryable(InjectedFault("site"))
        assert not is_retryable(RuntimeError("plain"))


# --------------------------------------------------------------------------- #
# Retry: transient faults heal invisibly, exhaustion is structured
# --------------------------------------------------------------------------- #
class TestRetry:
    def test_retried_fault_keeps_byte_parity_with_serial(self):
        lines = score_lines(8)
        _, serial, _ = run_serial(lines)
        injector = FaultInjector(seed=0)
        injector.arm("executor.unit", kind="raise", retryable=True, times=2)
        summary, concurrent, _ = run_concurrent(
            lines, workers=2, retry=FAST_RETRY, injector=injector)
        assert summary.errors == 0
        assert concurrent == serial
        assert injector.fired("executor.unit") == 2

    def test_exhausted_retries_answer_retryable(self):
        lines = score_lines(4)
        injector = FaultInjector(seed=0)
        injector.arm("executor.unit", kind="raise", retryable=True)  # forever
        summary, responses, _ = run_concurrent(
            lines, workers=2, retry=FAST_RETRY, injector=injector)
        assert summary.errors == len(lines)
        assert summary.error_codes == {ERR_RETRYABLE: len(lines)}
        for line in responses.values():
            assert json.loads(line)["error"]["code"] == ERR_RETRYABLE

    def test_without_retry_policy_fault_is_terminal(self):
        lines = score_lines(3)
        injector = FaultInjector(seed=0)
        injector.arm("executor.unit", kind="raise", retryable=True)
        summary, _, _ = run_concurrent(lines, workers=2, retry=None,
                                       injector=injector)
        assert summary.error_codes == {ERR_RETRYABLE: len(lines)}


# --------------------------------------------------------------------------- #
# Quarantine: a poison request body stops reaching the engine
# --------------------------------------------------------------------------- #
class TestQuarantine:
    def poisoned_envelope(self):
        return parse_envelope(json.loads(json.dumps(
            {"v": 1, "head": "score", "id": "p",
             "payload": {"static_indices": [1, 20], "history": [1, 2],
                         "user_id": PoisonableScoringHead.POISONED_USER}})))

    def make_router(self, quarantine_after=2):
        return ConcurrentServingRouter(
            make_registry(), default_model="golden",
            heads=heads_with(PoisonableScoringHead()), workers=2,
            quarantine_after=quarantine_after, retry=None, degradation=None)

    def submit_and_drain(self, router, envelope):
        results = []
        router.submit(envelope, 1,
                      lambda line, env, response, rows, code:
                      results.append(code))
        router.drain()
        return results

    def test_repeat_offender_is_quarantined(self):
        router = self.make_router(quarantine_after=2)
        try:
            for _ in range(2):
                codes = self.submit_and_drain(router, self.poisoned_envelope())
                assert codes == [ERR_EXECUTION]
            with pytest.raises(ProtocolError) as info:
                router.submit(self.poisoned_envelope(), 3, lambda *args: None)
            assert info.value.code == ERR_EXECUTION
            assert "quarantined" in str(info.value)
            assert router.status_payload()["runtime"]["quarantined"] == 1
        finally:
            router.close()

    def test_healthy_bodies_are_never_quarantined(self):
        router = self.make_router(quarantine_after=1)
        try:
            envelope = parse_envelope(
                {"v": 1, "head": "score", "id": "h",
                 "payload": {"static_indices": [1, 20], "history": [1, 2],
                             "user_id": 4}})
            for _ in range(3):
                codes = self.submit_and_drain(router, envelope)
                assert codes == [None]
            assert router.status_payload()["runtime"]["quarantined"] == 0
        finally:
            router.close()

    def test_quarantine_disabled_with_none(self):
        router = self.make_router(quarantine_after=None)
        try:
            for _ in range(4):
                codes = self.submit_and_drain(router, self.poisoned_envelope())
                assert codes == [ERR_EXECUTION]  # fails, but never rejected
        finally:
            router.close()


# --------------------------------------------------------------------------- #
# The degradation ladder
# --------------------------------------------------------------------------- #
class TestDegradationLadder:
    def test_level_thresholds(self):
        policy = DegradationPolicy(min_samples=10, shed_at=0.10,
                                   reduce_probe_at=0.25, reject_at=0.50)
        assert policy.level_for(HealthSnapshot(samples=5, failures=5)) == 0
        assert policy.level_for(HealthSnapshot(samples=100, failures=0)) == 0
        assert policy.level_for(HealthSnapshot(samples=100, failures=10)) == 1
        assert policy.level_for(HealthSnapshot(samples=100, failures=25)) == 2
        assert policy.level_for(HealthSnapshot(samples=100, failures=50)) == 3

    def test_window_drain_recovers(self):
        now = [0.0]
        monitor = HealthMonitor(window=5.0, clock=lambda: now[0])
        for _ in range(20):
            monitor.record(False)
        policy = DegradationPolicy(min_samples=10)
        assert policy.level_for(monitor.snapshot()) == 3
        now[0] = 6.0  # the failure burst ages out of the window
        health = monitor.snapshot()
        assert health.samples == 0
        assert policy.level_for(health) == 0

    def test_level_three_suspends_admission(self):
        router = ConcurrentServingRouter(
            make_registry(), default_model="golden", workers=2,
            degradation=DegradationPolicy(window=60.0, min_samples=5))
        try:
            for _ in range(10):
                router.health.record(False)
            envelope = parse_envelope(
                {"v": 1, "head": "score", "id": "x",
                 "payload": {"static_indices": [1, 20], "history": [1, 2],
                             "user_id": 0}})
            with pytest.raises(ProtocolError) as info:
                router.submit(envelope, 1, lambda *args: None)
            assert info.value.code == ERR_OVERLOADED
            assert router.status_payload()["runtime"]["degradation_level"] == 3
        finally:
            router.close()

    def test_level_two_halves_and_restores_n_probe(self):
        registry = make_registry()
        searcher = SimpleNamespace(n_probe=8)
        registry.get("golden").retriever = SimpleNamespace(searcher=searcher)
        router = ConcurrentServingRouter(registry, default_model="golden",
                                         workers=2)
        try:
            router._apply_degradation(2)
            assert searcher.n_probe == 4
            router._apply_degradation(2)  # idempotent while degraded
            assert searcher.n_probe == 4
            router._apply_degradation(0)
            assert searcher.n_probe == 8
        finally:
            router.close()

    def test_shed_coalescing_still_answers(self):
        # At level >= 1 coalescing is bypassed; responses still arrive and
        # match the uncoalesced concurrent path.
        lines = score_lines(10)
        _, expected, _ = run_concurrent(lines, workers=2)
        router_kwargs = dict(workers=2, coalesce=True, linger=0.001,
                             degradation=DegradationPolicy(window=60.0,
                                                           min_samples=1))
        registry = make_registry()
        import io

        from repro.serving import serve_concurrent_jsonl

        router_output = io.StringIO()
        # Pre-fail the health window through a custom router: simplest is a
        # stream whose first lines all fail, but seeding the monitor needs
        # the router object — so run the stream and only assert liveness.
        summary = serve_concurrent_jsonl(
            registry, "golden", io.StringIO("\n".join(lines) + "\n"),
            router_output, **router_kwargs)
        assert summary.errors == 0
        assert len(router_output.getvalue().splitlines()) == len(lines)


# --------------------------------------------------------------------------- #
# Bounded process-pool resurrection
# --------------------------------------------------------------------------- #
class _CrashingPool:
    def submit(self, *args, **kwargs):
        raise BrokenProcessPool("worker died")

    def shutdown(self, **kwargs):
        pass


class TestPoolRestart:
    def test_crash_is_transient_until_budget_spent(self, monkeypatch):
        router = ConcurrentServingRouter(make_registry(),
                                         default_model="golden", workers=2,
                                         max_pool_restarts=2)
        try:
            router.executors["golden"] = "process"
            monkeypatch.setattr(router, "_ensure_process_pool",
                                lambda: _CrashingPool())
            for restart in (1, 2):
                with pytest.raises(TransientFault):
                    router._execute_requests(("golden", "score"), [])
                assert router._pool_restarts == restart
            # Budget spent: the crash propagates non-retryably.
            with pytest.raises(BrokenProcessPool):
                router._execute_requests(("golden", "score"), [])
            assert router._pool_restarts == 2
        finally:
            router.close()

    def test_restart_bookkeeping_is_bounded(self):
        router = ConcurrentServingRouter(make_registry(),
                                         default_model="golden", workers=2,
                                         max_pool_restarts=1)
        try:
            assert router._restart_process_pool() is True
            assert router._restart_process_pool() is False
            assert router.status_payload()["runtime"]["pool_restarts"] == 1
        finally:
            router.close()


# --------------------------------------------------------------------------- #
# Durable-store fault sites: fail before mutation, recover after torn writes
# --------------------------------------------------------------------------- #
class TestDurableChaos:
    MAX_SEQ_LEN = 6

    def test_store_record_fault_leaves_state_untouched(self, tmp_path):
        injector = FaultInjector(seed=0)
        injector.arm("store.record", kind="raise", retryable=True, times=1)
        store = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN,
                                     fsync_every=1, injector=injector)
        with pytest.raises(InjectedFault) as info:
            store.record(0, [1, 2, 3])
        assert is_retryable(info.value)
        assert 0 not in store
        assert store.wal_status()["appends"] == 0
        store.record(0, [1, 2, 3])  # the retry succeeds
        assert store.history(0) == (1, 2, 3)
        store.sync()
        pre = store.snapshot()
        store.close()
        recovered = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN)
        assert recovered.snapshot() == pre
        recovered.close()

    def test_wal_append_fault_aborts_cleanly_then_retries(self, tmp_path):
        injector = FaultInjector(seed=0)
        injector.arm("wal.append", kind="raise", retryable=True, times=1)
        store = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN,
                                     fsync_every=1, injector=injector)
        with pytest.raises(InjectedFault):
            store.record(0, [1, 2])
        # Write-ahead means the aborted journal append blocked the mutation.
        assert 0 not in store
        assert store.wal_status()["last_seq"] == 0
        store.record(0, [1, 2])
        store.record(1, [3])
        store.sync()
        pre = store.snapshot()
        store.close()
        recovered = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN)
        assert recovered.snapshot() == pre
        assert recovered.recovery.replayed == 0  # close() checkpointed
        recovered.close()

    def test_torn_write_breaks_log_and_reopen_recovers(self, tmp_path):
        injector = FaultInjector(seed=0)
        injector.arm("wal.torn", kind="torn", after=2, times=1)
        store = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN,
                                     fsync_every=1, injector=injector)
        store.record(0, [1, 2])
        store.record(1, [3, 4])
        pre_crash = store.snapshot()
        with pytest.raises(WALError, match="torn write"):
            store.record(2, [5])
        # Fail-stop: the broken log refuses further appends...
        with pytest.raises(WALError, match="broken"):
            store.record(3, [6])
        del store  # crash without checkpoint (close() would compact)
        # ...and the reopen heals the torn tail back to the last good record.
        scan = read_wal(tmp_path / "wal.jsonl")
        assert scan.torn
        recovered = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN)
        assert recovered.recovery.torn_tail
        assert recovered.recovery.replayed == 2
        assert recovered.snapshot() == pre_crash
        assert 2 not in recovered and 3 not in recovered
        recovered.record(2, [5])  # the healed log accepts writes again
        assert recovered.history(2) == (5,)
        recovered.close()

    def test_fsync_fault_surfaces_without_corrupting_log(self, tmp_path):
        injector = FaultInjector(seed=0)
        injector.arm("wal.fsync", kind="raise", retryable=True, times=1)
        store = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN,
                                     fsync_every=1, injector=injector)
        with pytest.raises(InjectedFault):
            store.record(0, [1, 2])
        # The append landed before its fsync failed, so the failed record is
        # *more* durable than the caller was told — never less.  The
        # in-memory store skipped the mutation (journal-before-mutation)...
        assert 0 not in store
        store.record(1, [3])
        store.sync()
        del store  # crash without checkpoint
        # ...but a crash-recovery replays the durable record: at-least-once
        # semantics for operations that failed between append and fsync.
        recovered = DurableSequenceStore(tmp_path, self.MAX_SEQ_LEN)
        assert recovered.history(0) == (1, 2)
        assert recovered.history(1) == (3,)
        recovered.close()
