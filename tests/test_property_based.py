"""Property-based tests (hypothesis) for the core invariants: autograd
gradients, softmax/attention masks, metrics and the feature encoder."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F
from repro.core.masks import causal_mask, cross_view_mask
from repro.data.features import FeatureEncoder
from repro.data.interactions import Interaction, InteractionLog
from repro.data.split import leave_one_out_split
from repro.eval.ranking import hit_ratio_at_k, ndcg_at_k
from repro.eval.regression import root_relative_squared_error

SETTINGS = settings(max_examples=25, deadline=None)

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4, min_dims=1, max_dims=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


class TestAutogradProperties:
    @SETTINGS
    @given(small_arrays())
    def test_addition_gradient_is_ones(self, values):
        x = Tensor(values, requires_grad=True)
        (x + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(values))

    @SETTINGS
    @given(small_arrays())
    def test_sum_then_scale_gradient(self, values):
        x = Tensor(values, requires_grad=True)
        (x.sum() * 3.0).backward()
        np.testing.assert_allclose(x.grad, np.full_like(values, 3.0))

    @SETTINGS
    @given(small_arrays(max_side=3))
    def test_elementwise_product_gradcheck(self, values):
        x = Tensor(values, requires_grad=True)
        y = Tensor(np.ones_like(values) * 0.5, requires_grad=True)
        assert check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [x, y], rtol=1e-3, atol=1e-5)

    @SETTINGS
    @given(small_arrays(max_side=4, min_dims=2, max_dims=2))
    def test_softmax_rows_are_distributions(self, values):
        out = F.softmax(Tensor(values), axis=-1).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(values.shape[0]), atol=1e-9)

    @SETTINGS
    @given(small_arrays(max_side=4, min_dims=2, max_dims=2))
    def test_layer_norm_output_mean_is_zero(self, values):
        dim = values.shape[-1]
        out = F.layer_norm(Tensor(values), Tensor(np.ones(dim)), Tensor(np.zeros(dim))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(values.shape[0]), atol=1e-7)

    @SETTINGS
    @given(small_arrays(max_side=5), st.floats(min_value=0.0, max_value=0.8))
    def test_dropout_never_changes_shape_and_eval_is_identity(self, values, ratio):
        x = Tensor(values)
        out_eval = F.dropout(x, ratio, training=False, rng=np.random.default_rng(0))
        np.testing.assert_allclose(out_eval.data, values)
        out_train = F.dropout(x, ratio, training=True, rng=np.random.default_rng(0))
        assert out_train.shape == x.shape


class TestMaskProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=12))
    def test_causal_mask_row_i_allows_exactly_i_plus_one(self, size):
        mask = causal_mask(size)
        allowed_per_row = (mask == 0.0).sum(axis=1)
        np.testing.assert_array_equal(allowed_per_row, np.arange(1, size + 1))

    @SETTINGS
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=8))
    def test_cross_mask_allows_only_cross_pairs(self, num_static, seq_len):
        mask = cross_view_mask(num_static, seq_len)
        allowed = (mask == 0.0).sum()
        assert allowed == 2 * num_static * seq_len

    @SETTINGS
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=8))
    def test_cross_mask_is_symmetric(self, num_static, seq_len):
        mask = cross_view_mask(num_static, seq_len)
        np.testing.assert_array_equal(mask, mask.T)


class TestMetricProperties:
    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(2, 30), elements=finite_floats),
           st.integers(min_value=1, max_value=30))
    def test_hr_is_monotone_in_k(self, scores, k):
        position = 0
        smaller = hit_ratio_at_k(scores, position, k=max(1, k // 2))
        larger = hit_ratio_at_k(scores, position, k=k)
        assert larger >= smaller

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(2, 30), elements=finite_floats))
    def test_ndcg_never_exceeds_hr(self, scores):
        for k in (1, 5, 10):
            assert ndcg_at_k(scores, 0, k) <= hit_ratio_at_k(scores, 0, k) + 1e-12

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(3, 40),
                      elements=st.floats(min_value=-10, max_value=10,
                                         allow_nan=False, allow_infinity=False)))
    def test_rrse_perfect_prediction_is_zero(self, targets):
        assert root_relative_squared_error(targets, targets.copy()) == 0.0

    @SETTINGS
    @given(st.integers(min_value=2, max_value=20))
    def test_rrse_of_mean_predictor_is_one_for_varied_targets(self, size):
        targets = np.arange(size, dtype=np.float64)
        predictions = np.full(size, targets.mean())
        assert abs(root_relative_squared_error(targets, predictions) - 1.0) < 1e-9


@st.composite
def interaction_logs(draw):
    """Random small interaction logs with at least 3 events per user."""
    num_users = draw(st.integers(min_value=1, max_value=5))
    log = InteractionLog(name="hypothesis")
    timestamp = 0.0
    for user_id in range(num_users):
        length = draw(st.integers(min_value=3, max_value=8))
        for _ in range(length):
            object_id = draw(st.integers(min_value=0, max_value=12))
            timestamp += 1.0
            log.append(Interaction(user_id=user_id, object_id=object_id, timestamp=timestamp))
    return log


class TestDataProperties:
    @SETTINGS
    @given(interaction_logs())
    def test_leave_one_out_conserves_events(self, log):
        split = leave_one_out_split(log)
        total = len(split.train) + len(split.validation) + len(split.test)
        assert total == len(log)

    @SETTINGS
    @given(interaction_logs())
    def test_heldout_is_latest_event_per_user(self, log):
        split = leave_one_out_split(log)
        for user_id, event in split.test.items():
            sequence = log.user_sequence(user_id)
            assert event.timestamp == sequence[-1].timestamp

    @SETTINGS
    @given(interaction_logs(), st.integers(min_value=1, max_value=6))
    def test_encoder_output_is_well_formed(self, log, max_seq_len):
        encoder = FeatureEncoder(log, max_seq_len=max_seq_len)
        split = leave_one_out_split(log)
        for example in encoder.encode_training_instances(split.train):
            assert example.dynamic_indices.shape == (max_seq_len,)
            assert example.dynamic_mask.shape == (max_seq_len,)
            # Mask marks exactly the non-padding entries.
            np.testing.assert_array_equal(example.dynamic_mask > 0, example.dynamic_indices != 0)
            # Padding (if any) sits strictly on the left.
            valid_positions = np.where(example.dynamic_mask > 0)[0]
            if valid_positions.size:
                assert valid_positions[-1] == max_seq_len - 1
            assert example.static_indices[0] < encoder.num_users
            assert encoder.num_users <= example.static_indices[1] < encoder.static_vocab_size


# --------------------------------------------------------------------------- #
# Consistent hashing and the sharded sequence store
# --------------------------------------------------------------------------- #
from repro.serving.cache import (  # noqa: E402 — grouped with its test class
    HashRing,
    ShardedUserSequenceStore,
    UserSequenceStore,
)

shard_names = st.lists(st.integers(min_value=0, max_value=50), min_size=2,
                       max_size=8, unique=True)
user_ids = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=40)


class TestConsistentHashingProperties:
    @SETTINGS
    @given(shard_names, user_ids)
    def test_assignment_is_deterministic_across_rings(self, shards, keys):
        first = HashRing(shards)
        second = HashRing(list(reversed(shards)))
        for key in keys:
            assert first.shard_for(key) == second.shard_for(key)

    @SETTINGS
    @given(shard_names, user_ids, st.integers(min_value=51, max_value=60))
    def test_adding_a_shard_only_remaps_keys_it_takes(self, shards, keys, new):
        ring = HashRing(shards)
        before = {key: ring.shard_for(key) for key in keys}
        ring.add(new)
        for key, owner in before.items():
            after = ring.shard_for(key)
            assert after == owner or after == new

    @SETTINGS
    @given(shard_names, user_ids, st.data())
    def test_removing_a_shard_only_remaps_its_own_keys(self, shards, keys, data):
        ring = HashRing(shards)
        before = {key: ring.shard_for(key) for key in keys}
        victim = data.draw(st.sampled_from(shards))
        ring.remove(victim)
        for key, owner in before.items():
            if owner != victim:
                assert ring.shard_for(key) == owner

    @SETTINGS
    @given(shard_names, user_ids)
    def test_every_key_lands_on_a_live_shard(self, shards, keys):
        ring = HashRing(shards)
        for key in keys:
            assert ring.shard_for(key) in shards


@st.composite
def store_operations(draw):
    """A mixed op tape: record / append / encode / stored-read / clock advance."""
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["record", "append", "encode", "read", "tick"]))
        user_id = draw(st.integers(min_value=0, max_value=12))
        if kind == "record":
            events = draw(st.lists(st.integers(min_value=1, max_value=28),
                                   min_size=1, max_size=4))
            operations.append(("record", user_id, events))
        elif kind == "append":
            operations.append(("append", user_id, draw(st.integers(min_value=1, max_value=28))))
        elif kind == "encode":
            history = draw(st.lists(st.integers(min_value=1, max_value=28),
                                    min_size=0, max_size=6))
            operations.append(("encode", user_id, history))
        elif kind == "read":
            operations.append(("read", user_id, None))
        else:
            operations.append(("tick", None, draw(st.floats(min_value=0.1, max_value=6.0))))
    return operations


def _apply(store, operations, clock):
    """Drive one store through the tape; returns the stored-read outcomes."""
    seen = []
    for kind, user_id, argument in operations:
        if kind == "record":
            store.record(user_id, argument)
        elif kind == "append":
            store.append_event(user_id, argument)
        elif kind == "encode":
            store.encode(user_id, argument)
        elif kind == "read":
            seen.append((user_id, store.history(user_id)))
        else:
            clock["now"] += argument
    return seen


class TestShardedStoreProperties:
    @SETTINGS
    @given(store_operations(), st.integers(min_value=2, max_value=5))
    def test_ttl_and_state_semantics_match_the_single_store(self, operations, shards):
        """Sharding is invisible: same tape, same visible state, same expiry.

        Capacity is non-binding here on purpose — per-shard LRU eviction
        *order* is the one semantic sharding legitimately changes; TTL and
        sequence state must not.
        """
        clock = {"now": 0.0}
        sharded = ShardedUserSequenceStore(max_seq_len=6, capacity=4096, ttl=8.0,
                                           clock=lambda: clock["now"], shards=shards)
        sharded_reads = _apply(sharded, operations, clock)
        clock["now"] = 0.0
        single = UserSequenceStore(max_seq_len=6, capacity=4096, ttl=8.0,
                                   clock=lambda: clock["now"])
        single_reads = _apply(single, operations, clock)
        assert sharded_reads == single_reads
        for user_id in range(13):
            assert sharded.history(user_id) == single.history(user_id)

    @SETTINGS
    @given(store_operations(), st.integers(min_value=2, max_value=5))
    def test_snapshot_restore_round_trips_exactly(self, operations, shards):
        clock = {"now": 0.0}
        store = ShardedUserSequenceStore(max_seq_len=6, capacity=64, ttl=30.0,
                                         clock=lambda: clock["now"], shards=shards)
        _apply(store, operations, clock)
        snapshot = store.snapshot()
        clone = ShardedUserSequenceStore(max_seq_len=6, capacity=64, ttl=30.0,
                                         clock=lambda: clock["now"], shards=shards)
        clone.restore(snapshot)
        assert len(clone) == len(store)
        for user_id in range(13):
            assert clone.history(user_id) == store.history(user_id)
        # And the copies evolve identically afterwards.
        store.record(3, [9]); clone.record(3, [9])
        assert clone.history(3) == store.history(3)

    @SETTINGS
    @given(store_operations())
    def test_single_store_snapshot_round_trips_exactly(self, operations):
        clock = {"now": 0.0}
        store = UserSequenceStore(max_seq_len=6, capacity=32, ttl=30.0,
                                  clock=lambda: clock["now"])
        _apply(store, operations, clock)
        clone = UserSequenceStore(max_seq_len=6, capacity=32, ttl=30.0,
                                  clock=lambda: clock["now"])
        clone.restore(store.snapshot())
        assert len(clone) == len(store)
        for user_id in range(13):
            assert clone.history(user_id) == store.history(user_id)
