"""Tests for the SGD and Adam optimisers and the loss modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Adam, BCEWithLogitsLoss, BPRLoss, MSELoss, SGD
from repro.nn.module import Parameter


def _quadratic_loss(parameter: Parameter) -> Tensor:
    """Convex quadratic with minimum at (3, -2)."""
    target = Tensor(np.array([3.0, -2.0]))
    diff = parameter - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(2))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = _quadratic_loss(parameter)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(2))
        momentum = Parameter(np.zeros(2))
        optimizer_plain = SGD([plain], lr=0.01)
        optimizer_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for parameter, optimizer in ((plain, optimizer_plain), (momentum, optimizer_momentum)):
                optimizer.zero_grad()
                _quadratic_loss(parameter).backward()
                optimizer.step()
        assert _quadratic_loss(momentum).item() < _quadratic_loss(plain).item()

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (parameter * 0).sum().backward()
        optimizer.step()
        assert abs(parameter.data[0]) < 10.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError, match="weight_decay"):
            SGD([Parameter(np.zeros(1))], lr=0.1, weight_decay=-0.1)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no grad accumulated: must be a no-op
        np.testing.assert_allclose(parameter.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(2))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            _quadratic_loss(parameter).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [3.0, -2.0], atol=1e-2)

    def test_bias_correction_first_step_magnitude(self):
        # With a constant unit gradient the first Adam step is ≈ lr regardless of betas.
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.5)
        optimizer.zero_grad()
        (parameter * 1.0).sum().backward()
        optimizer.step()
        assert parameter.data[0] == pytest.approx(-0.5, rel=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))

    def test_invalid_eps_and_weight_decay(self):
        with pytest.raises(ValueError, match="eps"):
            Adam([Parameter(np.zeros(1))], lr=0.1, eps=0.0)
        with pytest.raises(ValueError, match="eps"):
            Adam([Parameter(np.zeros(1))], lr=0.1, eps=-1e-8)
        with pytest.raises(ValueError, match="weight_decay"):
            Adam([Parameter(np.zeros(1))], lr=0.1, weight_decay=-0.01)

    def test_weight_decay_applied(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = Adam([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0).sum().backward()
        optimizer.step()
        assert parameter.data[0] < 5.0


class TestLossModules:
    def test_bpr_loss_module(self):
        loss = BPRLoss()(Tensor([2.0]), Tensor([0.0]))
        assert 0 < loss.item() < np.log(2.0)

    def test_bce_loss_module(self):
        loss = BCEWithLogitsLoss()(Tensor([0.0, 0.0]), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(np.log(2.0), rel=1e-9)

    def test_mse_loss_module(self):
        loss = MSELoss()(Tensor([1.0, 3.0]), np.array([1.0, 1.0]))
        assert loss.item() == pytest.approx(2.0)
