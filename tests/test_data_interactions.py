"""Tests for interaction-log data structures and preprocessing."""

from __future__ import annotations

import pytest

from repro.data.interactions import Interaction, InteractionLog
from repro.data.preprocess import chronological_sort, deduplicate_consecutive, filter_by_activity


class TestInteractionLog:
    def test_len_and_iteration(self, tiny_log):
        assert len(tiny_log) == 24
        assert sum(1 for _ in tiny_log) == 24

    def test_users_and_objects(self, tiny_log):
        assert tiny_log.users == {0, 1, 2, 3}
        assert tiny_log.objects == {10, 11, 12, 13, 14, 15}
        assert tiny_log.num_users() == 4
        assert tiny_log.num_objects() == 6

    def test_by_user_is_chronological(self, tiny_log):
        for user_id, sequence in tiny_log.by_user().items():
            timestamps = [event.timestamp for event in sequence]
            assert timestamps == sorted(timestamps)

    def test_user_sequence_unknown_user(self, tiny_log):
        assert tiny_log.user_sequence(99) == []

    def test_append_invalidates_cache(self, tiny_log):
        initial = len(tiny_log.user_sequence(0))
        tiny_log.append(Interaction(user_id=0, object_id=10, timestamp=1e6))
        assert len(tiny_log.user_sequence(0)) == initial + 1

    def test_extend(self):
        log = InteractionLog()
        log.extend([Interaction(1, 2, 0.0), Interaction(1, 3, 1.0)])
        assert len(log) == 2

    def test_objects_of_user(self, tiny_log):
        assert tiny_log.objects_of_user(0) == {10, 11, 12, 13, 14, 15}

    def test_has_ratings(self, tiny_log):
        assert tiny_log.has_ratings()
        implicit = InteractionLog([Interaction(1, 2, 0.0)])
        assert not implicit.has_ratings()

    def test_statistics(self, tiny_log):
        stats = tiny_log.statistics()
        assert stats == {"instances": 24, "users": 4, "objects": 6}


class TestChronologicalSort:
    def test_sorted_by_timestamp(self, poi_log):
        ordered = chronological_sort(poi_log)
        timestamps = [event.timestamp for event in ordered]
        assert timestamps == sorted(timestamps)

    def test_preserves_count_and_name(self, poi_log):
        ordered = chronological_sort(poi_log)
        assert len(ordered) == len(poi_log)
        assert ordered.name == poi_log.name


class TestActivityFilter:
    def test_removes_inactive_users(self):
        log = InteractionLog()
        # user 0: 5 interactions; user 1: only 1.
        for step in range(5):
            log.append(Interaction(0, step % 2, float(step)))
        log.append(Interaction(1, 0, 10.0))
        filtered = filter_by_activity(log, min_user_interactions=3, min_object_interactions=1)
        assert filtered.users == {0}

    def test_removes_unpopular_objects(self):
        log = InteractionLog()
        for user in range(4):
            log.append(Interaction(user, 100, float(user)))       # popular object
        log.append(Interaction(0, 200, 10.0))                      # unpopular object
        filtered = filter_by_activity(log, min_user_interactions=1, min_object_interactions=3)
        assert filtered.objects == {100}

    def test_iterates_to_fixed_point(self):
        # Removing the unpopular object drops user 1 below the activity bar.
        log = InteractionLog()
        for step in range(3):
            log.append(Interaction(0, 1, float(step)))
            log.append(Interaction(1, 1, float(step) + 0.5))
        log.append(Interaction(1, 99, 10.0))
        log.append(Interaction(1, 98, 11.0))
        filtered = filter_by_activity(log, min_user_interactions=4, min_object_interactions=2)
        assert 1 not in filtered.users or len(filtered.user_sequence(1)) >= 4

    def test_invalid_thresholds(self, tiny_log):
        with pytest.raises(ValueError):
            filter_by_activity(tiny_log, min_user_interactions=0)

    def test_keeps_everything_when_thresholds_met(self, tiny_log):
        filtered = filter_by_activity(tiny_log, min_user_interactions=2, min_object_interactions=2)
        assert len(filtered) == len(tiny_log)


class TestDeduplicateConsecutive:
    def test_removes_immediate_repeats(self):
        log = InteractionLog()
        for index, object_id in enumerate([5, 5, 6, 6, 6, 5]):
            log.append(Interaction(0, object_id, float(index)))
        deduplicated = deduplicate_consecutive(log)
        assert [event.object_id for event in deduplicated.user_sequence(0)] == [5, 6, 5]

    def test_users_are_independent(self):
        log = InteractionLog()
        log.append(Interaction(0, 5, 0.0))
        log.append(Interaction(1, 5, 1.0))
        deduplicated = deduplicate_consecutive(log)
        assert len(deduplicated) == 2
