"""Tests for the leave-one-out evaluation protocol drivers."""

from __future__ import annotations

import pytest

from repro.core.config import SeqFMConfig
from repro.core.tasks import SeqFMClassifier, SeqFMRanker, SeqFMRegressor
from repro.data.features import FeatureEncoder
from repro.data.sampling import NegativeSampler
from repro.data.split import leave_one_out_split
from repro.eval.protocol import EvaluationProtocol


@pytest.fixture
def ranking_setup(poi_log):
    split = leave_one_out_split(poi_log)
    encoder = FeatureEncoder(poi_log, max_seq_len=6)
    sampler = NegativeSampler(poi_log, seed=0)
    config = SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=6, embed_dim=8, dropout=0.0, seed=0,
    )
    protocol = EvaluationProtocol(encoder, sampler, num_ranking_negatives=20, cutoffs=(5, 10))
    return split, encoder, sampler, config, protocol


class TestRankingProtocol:
    def test_metrics_structure(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate_ranking_task(SeqFMRanker(config), split)
        assert set(metrics.as_dict()) == {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}
        assert metrics.num_cases > 0

    def test_metrics_bounded(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate_ranking_task(SeqFMRanker(config), split)
        for value in metrics.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_hr_monotone_in_k(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate_ranking_task(SeqFMRanker(config), split)
        assert metrics.hr[10] >= metrics.hr[5]

    def test_max_users_limits_cases(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate_ranking_task(SeqFMRanker(config), split, max_users=3)
        assert metrics.num_cases <= 3

    def test_validation_and_test_differ(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        model = SeqFMRanker(config)
        test_metrics = protocol.evaluate_ranking_task(model, split, use_validation=False)
        validation_metrics = protocol.evaluate_ranking_task(model, split, use_validation=True)
        # Same number of users, but generally different values.
        assert test_metrics.num_cases == validation_metrics.num_cases

    def test_requires_sampler(self, ranking_setup):
        split, encoder, _, config, _ = ranking_setup
        protocol = EvaluationProtocol(encoder, sampler=None)
        with pytest.raises(ValueError):
            protocol.evaluate_ranking_task(SeqFMRanker(config), split)

    def test_dispatch_by_task_name(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate(SeqFMRanker(config), split, "ranking")
        assert "HR@5" in metrics
        with pytest.raises(ValueError):
            protocol.evaluate(SeqFMRanker(config), split, "segmentation")


class TestClassificationProtocol:
    def test_metrics_structure(self, ranking_setup):
        split, _, _, config, protocol = ranking_setup
        metrics = protocol.evaluate_classification_task(SeqFMClassifier(config), split)
        assert 0.0 <= metrics.auc <= 1.0
        assert metrics.rmse >= 0.0
        assert metrics.num_cases % 2 == 0  # one negative per positive


class TestRegressionProtocol:
    def test_metrics_structure(self, rating_log):
        split = leave_one_out_split(rating_log)
        encoder = FeatureEncoder(rating_log, max_seq_len=5)
        config = SeqFMConfig(
            static_vocab_size=encoder.static_vocab_size,
            dynamic_vocab_size=encoder.dynamic_vocab_size,
            max_seq_len=5, embed_dim=8, dropout=0.0, seed=0,
        )
        protocol = EvaluationProtocol(encoder)
        metrics = protocol.evaluate_regression_task(SeqFMRegressor(config), split)
        assert metrics.mae >= 0.0
        assert metrics.num_cases > 0
