"""Integration tests: the full pipeline (generate → filter → split → encode →
train → evaluate) for each of the three tasks, plus the headline claim of the
paper — the sequence-aware model beats the order-free FM when the data has
sequential structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FM
from repro.core.config import SeqFMConfig
from repro.core.tasks import make_task_model, SeqFMClassifier, SeqFMRanker, SeqFMRegressor
from repro.core.trainer import Trainer, TrainerConfig
from repro.data import synthetic
from repro.data.features import FeatureEncoder
from repro.data.preprocess import filter_by_activity
from repro.data.sampling import NegativeSampler
from repro.data.split import leave_one_out_split
from repro.eval.protocol import EvaluationProtocol


def _prepare(log, max_seq_len=8, use_ratings=False):
    split = leave_one_out_split(log)
    encoder = FeatureEncoder(log, max_seq_len=max_seq_len)
    sampler = NegativeSampler(log, seed=0)
    examples = encoder.encode_training_instances(split.train, use_ratings=use_ratings)
    return split, encoder, sampler, examples


def _config(encoder, **overrides):
    params = dict(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=16, ffn_layers=1, dropout=0.1, seed=0,
    )
    params.update(overrides)
    return SeqFMConfig(**params)


@pytest.mark.integration
class TestRankingEndToEnd:
    def test_training_improves_over_untrained(self):
        log = synthetic.generate_poi_checkins(
            synthetic.SyntheticConfig(num_users=50, num_objects=60, interactions_per_user=16,
                                      seed=0, sequential_strength=0.85)
        )
        log = filter_by_activity(log, 5, 3)
        split, encoder, sampler, examples = _prepare(log)
        protocol = EvaluationProtocol(encoder, sampler, num_ranking_negatives=40, cutoffs=(10,))

        untrained = SeqFMRanker(_config(encoder))
        untrained_hr = protocol.evaluate_ranking_task(untrained, split).hr[10]

        trained = SeqFMRanker(_config(encoder))
        trainer = Trainer(trained, encoder, sampler,
                          TrainerConfig(epochs=4, batch_size=64, learning_rate=0.01,
                                        negatives_per_positive=1, seed=0))
        result = trainer.fit(examples)
        trained_hr = protocol.evaluate_ranking_task(trained, split).hr[10]

        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert trained_hr > untrained_hr

    def test_seqfm_beats_fm_on_sequential_data(self):
        """The paper's central claim at miniature scale: on data whose next event
        depends on the recent history, the sequence-aware model must outrank the
        set-category FM."""
        log = synthetic.generate_poi_checkins(
            synthetic.SyntheticConfig(num_users=60, num_objects=60, interactions_per_user=18,
                                      seed=1, sequential_strength=0.9)
        )
        log = filter_by_activity(log, 5, 3)
        split, encoder, sampler, examples = _prepare(log)
        protocol = EvaluationProtocol(encoder, sampler, num_ranking_negatives=40, cutoffs=(10,))
        trainer_config = TrainerConfig(epochs=4, batch_size=64, learning_rate=0.01,
                                       negatives_per_positive=1, seed=0)

        seqfm = SeqFMRanker(_config(encoder))
        Trainer(seqfm, encoder, sampler, trainer_config).fit(examples)
        seqfm_hr = protocol.evaluate_ranking_task(seqfm, split).hr[10]

        fm = make_task_model(
            FM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=16, seed=0),
            "ranking",
        )
        Trainer(fm, encoder, sampler, trainer_config).fit(examples)
        fm_hr = protocol.evaluate_ranking_task(fm, split).hr[10]

        assert seqfm_hr >= fm_hr


@pytest.mark.integration
class TestClassificationEndToEnd:
    def test_auc_above_chance_after_training(self):
        log = synthetic.generate_ctr_log(
            synthetic.SyntheticConfig(num_users=50, num_objects=70, interactions_per_user=16,
                                      seed=2, sequential_strength=0.85)
        )
        log = filter_by_activity(log, 5, 3)
        split, encoder, sampler, examples = _prepare(log)
        protocol = EvaluationProtocol(encoder, sampler)

        model = SeqFMClassifier(_config(encoder))
        Trainer(model, encoder, sampler,
                TrainerConfig(epochs=4, batch_size=64, learning_rate=0.01,
                              negatives_per_positive=2, seed=0)).fit(examples)
        metrics = protocol.evaluate_classification_task(model, split)
        assert metrics.auc > 0.55
        assert 0.0 <= metrics.rmse <= 1.0


@pytest.mark.integration
class TestRegressionEndToEnd:
    def test_beats_mean_predictor(self):
        log = synthetic.generate_rating_log(
            synthetic.SyntheticConfig(num_users=50, num_objects=50, interactions_per_user=14,
                                      seed=3, sequential_strength=0.85)
        )
        split, encoder, sampler, examples = _prepare(log, use_ratings=True)
        protocol = EvaluationProtocol(encoder)

        model = SeqFMRegressor(_config(encoder))
        Trainer(model, encoder,
                config=TrainerConfig(epochs=10, batch_size=32, learning_rate=0.02, seed=0,
                                     convergence_tolerance=0.0)).fit(examples)
        metrics = protocol.evaluate_regression_task(model, split)
        # RRSE around or below 1 means the model is at least as good as predicting
        # the test mean; a small tolerance absorbs the tiny held-out set size.
        assert metrics.rrse < 1.05
        assert metrics.mae < 1.5

    def test_predictions_near_rating_scale(self):
        log = synthetic.generate_rating_log(
            synthetic.SyntheticConfig(num_users=30, num_objects=40, interactions_per_user=12, seed=4)
        )
        split, encoder, sampler, examples = _prepare(log, use_ratings=True)
        model = SeqFMRegressor(_config(encoder))
        Trainer(model, encoder,
                config=TrainerConfig(epochs=3, batch_size=64, learning_rate=0.01, seed=0)).fit(examples)
        from repro.data.features import FeatureBatch
        batch = FeatureBatch.from_examples(examples[:20])
        predictions = model.predict(batch)
        assert np.all(predictions > -2.0) and np.all(predictions < 8.0)


@pytest.mark.integration
class TestModelPersistence:
    def test_state_dict_roundtrip_preserves_predictions(self):
        log = synthetic.generate_poi_checkins(
            synthetic.SyntheticConfig(num_users=20, num_objects=30, interactions_per_user=10, seed=5)
        )
        split, encoder, sampler, examples = _prepare(log)
        model_a = SeqFMRanker(_config(encoder))
        Trainer(model_a, encoder, sampler,
                TrainerConfig(epochs=1, batch_size=32, seed=0)).fit(examples)

        model_b = SeqFMRanker(_config(encoder, seed=123))
        model_b.load_state_dict(model_a.state_dict())

        from repro.data.features import FeatureBatch
        batch = FeatureBatch.from_examples(examples[:10])
        np.testing.assert_allclose(model_a.predict(batch), model_b.predict(batch))
