"""Unit tests for the differentiable functional building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F
from repro.core.masks import causal_mask


def _tensor(rng, shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        out = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_invariant_to_constant_shift(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_stable_for_large_inputs(self):
        out = F.softmax(Tensor([[1e8, 0.0]])).data
        assert np.isfinite(out).all()

    def test_gradient(self, rng):
        x = _tensor(rng, (3, 4))
        check_gradients(lambda ts: (F.softmax(ts[0], axis=-1) ** 2).sum(), [x])

    def test_axis_zero(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        out = F.softmax(x, axis=0).data
        np.testing.assert_allclose(out.sum(axis=0), np.ones(3), atol=1e-12)


class TestActivations:
    def test_relu_values(self):
        np.testing.assert_allclose(F.relu(Tensor([-2.0, 3.0])).data, [0.0, 3.0])

    def test_sigmoid_matches_definition(self, rng):
        x = rng.normal(size=5)
        np.testing.assert_allclose(F.sigmoid(Tensor(x)).data, 1 / (1 + np.exp(-x)), atol=1e-12)

    def test_log_sigmoid_stable_for_large_negative(self):
        value = F.log_sigmoid(Tensor([-500.0])).data
        assert np.isfinite(value).all()
        assert value[0] == pytest.approx(-500.0, rel=1e-6)

    def test_log_sigmoid_matches_log_of_sigmoid(self, rng):
        x = rng.normal(size=6)
        expected = np.log(1 / (1 + np.exp(-x)))
        np.testing.assert_allclose(F.log_sigmoid(Tensor(x)).data, expected, atol=1e-10)

    def test_softplus_gradient(self, rng):
        x = _tensor(rng, (5,))
        check_gradients(lambda ts: F.softplus(ts[0]).sum(), [x])

    def test_tanh_values(self, rng):
        x = rng.normal(size=4)
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        x = Tensor(rng.normal(size=(6, 8)) * 5 + 3)
        scale = Tensor(np.ones(8))
        bias = Tensor(np.zeros(8))
        out = F.layer_norm(x, scale, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), atol=1e-3)

    def test_scale_and_bias_applied(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        scale = Tensor(np.full(4, 2.0))
        bias = Tensor(np.full(4, 1.0))
        out = F.layer_norm(x, scale, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(2), atol=1e-8)

    def test_gradient(self, rng):
        x = _tensor(rng, (3, 5))
        scale = Tensor(rng.normal(size=5), requires_grad=True)
        bias = Tensor(rng.normal(size=5), requires_grad=True)
        check_gradients(lambda ts: (F.layer_norm(ts[0], ts[1], ts[2]) ** 2).sum(), [x, scale, bias])

    def test_constant_row_does_not_divide_by_zero(self):
        x = Tensor(np.full((1, 4), 3.0))
        out = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4))).data
        assert np.isfinite(out).all()


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_ratio_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.0, training=True, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_mode_zeroes_and_rescales(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.4, training=True, rng=np.random.default_rng(0)).data
        survivors = out[out != 0.0]
        np.testing.assert_allclose(survivors, 1.0 / 0.6, atol=1e-12)
        assert 0.5 < survivors.size / 1000 < 0.7

    def test_invalid_ratio_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=rng)

    def test_expected_value_preserved(self):
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(1)).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)


class TestAttention:
    def test_output_shape(self, rng):
        q = Tensor(rng.normal(size=(2, 5, 4)))
        out = F.scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 4)

    def test_uniform_queries_give_mean_of_values(self, rng):
        # With zero queries/keys all scores are equal → output is the mean value.
        values = Tensor(rng.normal(size=(1, 4, 3)))
        zeros = Tensor(np.zeros((1, 4, 3)))
        out = F.scaled_dot_product_attention(zeros, zeros, values).data
        np.testing.assert_allclose(out[0, 0], values.data[0].mean(axis=0), atol=1e-12)

    def test_causal_mask_blocks_future(self, rng):
        n, d = 5, 3
        q = Tensor(rng.normal(size=(1, n, d)))
        values = Tensor(rng.normal(size=(1, n, d)))
        mask = causal_mask(n)[None, :, :]
        out = F.scaled_dot_product_attention(q, q, values, mask=mask).data
        # First position can only attend to itself → equals its own value row.
        np.testing.assert_allclose(out[0, 0], values.data[0, 0], atol=1e-9)

    def test_gradient_with_mask(self, rng):
        q = _tensor(rng, (1, 3, 2))
        k = _tensor(rng, (1, 3, 2))
        v = _tensor(rng, (1, 3, 2))
        mask = causal_mask(3)[None, :, :]
        check_gradients(
            lambda ts: (F.scaled_dot_product_attention(ts[0], ts[1], ts[2], mask=mask) ** 2).sum(),
            [q, k, v],
        )


class TestPooling:
    def test_mean_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 3)))
        np.testing.assert_allclose(F.mean_pool(x).data, x.data.mean(axis=-2))

    def test_masked_mean_pool_ignores_padding(self, rng):
        x = np.zeros((1, 3, 2))
        x[0, 0] = [2.0, 2.0]
        x[0, 1] = [4.0, 4.0]
        x[0, 2] = [100.0, 100.0]  # padding position
        mask = np.array([[1.0, 1.0, 0.0]])
        out = F.masked_mean_pool(Tensor(x), mask).data
        np.testing.assert_allclose(out, [[3.0, 3.0]])

    def test_masked_mean_pool_all_padding_is_zero(self):
        x = Tensor(np.ones((1, 3, 2)))
        mask = np.zeros((1, 3))
        out = F.masked_mean_pool(x, mask).data
        np.testing.assert_allclose(out, np.zeros((1, 2)))

    def test_masked_mean_pool_gradient(self, rng):
        x = _tensor(rng, (2, 4, 3))
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=float)
        check_gradients(lambda ts: (F.masked_mean_pool(ts[0], mask) ** 2).sum(), [x])


class TestLosses:
    def test_bce_matches_manual(self, rng):
        logits = rng.normal(size=6)
        targets = (rng.random(6) > 0.5).astype(float)
        probabilities = 1 / (1 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities))
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        assert loss.item() == pytest.approx(expected, rel=1e-9)

    def test_bce_stable_for_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradient(self, rng):
        logits = _tensor(rng, (5,))
        targets = (rng.random(5) > 0.5).astype(float)
        check_gradients(lambda ts: F.binary_cross_entropy_with_logits(ts[0], targets), [logits])

    def test_bpr_loss_decreases_with_margin(self):
        small = F.bpr_loss(Tensor([0.1]), Tensor([0.0])).item()
        large = F.bpr_loss(Tensor([5.0]), Tensor([0.0])).item()
        assert large < small

    def test_bpr_loss_is_log2_at_zero_margin(self):
        loss = F.bpr_loss(Tensor([1.0, 2.0]), Tensor([1.0, 2.0])).item()
        assert loss == pytest.approx(np.log(2.0), rel=1e-9)

    def test_bpr_gradient(self, rng):
        pos = _tensor(rng, (4,))
        neg = _tensor(rng, (4,))
        check_gradients(lambda ts: F.bpr_loss(ts[0], ts[1]), [pos, neg])

    def test_mse_matches_manual(self, rng):
        predictions = rng.normal(size=5)
        targets = rng.normal(size=5)
        expected = np.mean((predictions - targets) ** 2)
        loss = F.mse_loss(Tensor(predictions), targets)
        assert loss.item() == pytest.approx(expected, rel=1e-12)

    def test_mse_gradient(self, rng):
        predictions = _tensor(rng, (5,))
        targets = rng.normal(size=5)
        check_gradients(lambda ts: F.mse_loss(ts[0], targets), [predictions])


class TestEmbeddingAndLinear:
    def test_embedding_lookup_values(self, rng):
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        indices = np.array([[1, 4], [0, 0]])
        out = F.embedding_lookup(table, indices)
        np.testing.assert_allclose(out.data, table.data[indices])

    def test_linear_with_bias(self, rng):
        x = _tensor(rng, (3, 4))
        w = _tensor(rng, (4, 2))
        b = _tensor(rng, (2,))
        check_gradients(lambda ts: (F.linear(ts[0], ts[1], ts[2]) ** 2).sum(), [x, w, b])

    def test_linear_without_bias(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        w = Tensor(rng.normal(size=(4, 2)))
        np.testing.assert_allclose(F.linear(x, w).data, x.data @ w.data)
