"""Tests for leave-one-out splitting, feature encoding and batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.batching import BatchIterator
from repro.data.features import PADDING_INDEX, FeatureBatch, FeatureEncoder
from repro.data.interactions import Interaction, InteractionLog
from repro.data.split import leave_one_out_split, proportion_subset


class TestLeaveOneOutSplit:
    def test_each_user_has_one_test_and_one_validation(self, tiny_log):
        split = leave_one_out_split(tiny_log)
        assert set(split.test) == tiny_log.users
        assert set(split.validation) == tiny_log.users

    def test_heldout_records_are_the_latest(self, tiny_log):
        split = leave_one_out_split(tiny_log)
        for user_id in tiny_log.users:
            sequence = tiny_log.user_sequence(user_id)
            assert split.test[user_id] == sequence[-1]
            assert split.validation[user_id] == sequence[-2]

    def test_train_excludes_heldout(self, tiny_log):
        split = leave_one_out_split(tiny_log)
        train_events = set((e.user_id, e.object_id, e.timestamp) for e in split.train)
        for user_id in tiny_log.users:
            held = split.test[user_id]
            assert (held.user_id, held.object_id, held.timestamp) not in train_events

    def test_short_sequences_go_entirely_to_train(self):
        log = InteractionLog()
        log.append(Interaction(0, 1, 0.0))
        log.append(Interaction(0, 2, 1.0))
        split = leave_one_out_split(log)
        assert 0 not in split.test
        assert len(split.train) == 2

    def test_history_matches_train_part(self, tiny_log):
        split = leave_one_out_split(tiny_log)
        for user_id, history in split.history.items():
            assert len(history) == len(tiny_log.user_sequence(user_id)) - 2

    def test_min_sequence_length_validation(self, tiny_log):
        with pytest.raises(ValueError):
            leave_one_out_split(tiny_log, min_sequence_length=2)

    def test_users_helper_sorted(self, tiny_log):
        split = leave_one_out_split(tiny_log)
        assert split.users() == sorted(tiny_log.users)


class TestProportionSubset:
    def test_returns_earliest_fraction(self, poi_log):
        subset = proportion_subset(poi_log, 0.5)
        assert len(subset) == round(len(poi_log) * 0.5)
        cutoff_time = max(e.timestamp for e in subset)
        remaining = [e for e in poi_log if e.timestamp > cutoff_time]
        assert len(remaining) >= len(poi_log) - len(subset) - 1

    def test_full_proportion_keeps_everything(self, poi_log):
        assert len(proportion_subset(poi_log, 1.0)) == len(poi_log)

    def test_invalid_proportion(self, poi_log):
        with pytest.raises(ValueError):
            proportion_subset(poi_log, 0.0)
        with pytest.raises(ValueError):
            proportion_subset(poi_log, 1.5)


class TestFeatureEncoder:
    def test_vocabulary_sizes(self, tiny_log, encoder):
        assert encoder.num_users == 4
        assert encoder.num_objects == 6
        assert encoder.static_vocab_size == 10
        assert encoder.dynamic_vocab_size == 7  # + padding

    def test_encode_static_layout(self, tiny_log, encoder):
        history = tiny_log.user_sequence(0)[:3]
        example = encoder.encode(0, 13, history)
        assert example.static_indices[encoder.user_slot] < encoder.num_users
        assert example.static_indices[encoder.candidate_slot] >= encoder.num_users

    def test_history_is_left_padded(self, tiny_log, encoder):
        history = tiny_log.user_sequence(0)[:2]
        example = encoder.encode(0, 13, history)
        assert example.dynamic_indices[0] == PADDING_INDEX
        assert example.dynamic_indices[1] == PADDING_INDEX
        assert example.dynamic_mask[:2].sum() == 0
        assert example.dynamic_mask[2:].sum() == 2

    def test_history_truncated_to_most_recent(self, tiny_log, encoder):
        history = tiny_log.user_sequence(0)  # 6 events, max_seq_len=4
        example = encoder.encode(0, 13, history)
        expected_objects = [event.object_id for event in history[-4:]]
        decoded = [encoder.known_objects()[index - 1] for index in example.dynamic_indices]
        assert decoded == expected_objects

    def test_unknown_user_or_object_raises(self, encoder, tiny_log):
        history = tiny_log.user_sequence(0)[:2]
        with pytest.raises(KeyError):
            encoder.encode(99, 13, history)
        with pytest.raises(KeyError):
            encoder.encode(0, 999, history)

    def test_training_instances_expansion(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        # Each user contributes len(train_sequence) - 1 instances (min_history=1).
        expected = sum(len(sequence) - 1 for sequence in split.history.values())
        assert len(examples) == expected

    def test_training_instances_use_only_past_events(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        for example in examples:
            history_objects = {
                encoder.known_objects()[index - 1]
                for index, mask in zip(example.dynamic_indices, example.dynamic_mask)
                if mask > 0
            }
            sequence = split.train.user_sequence(example.user_id)
            candidate_position = next(
                position for position, event in enumerate(sequence)
                if event.object_id == example.object_id
                and set(history_objects) <= {e.object_id for e in sequence[:position]}
            )
            assert candidate_position >= 1

    def test_training_instances_with_ratings(self, rating_log):
        encoder = FeatureEncoder(rating_log, max_seq_len=5)
        split = leave_one_out_split(rating_log)
        examples = encoder.encode_training_instances(split.train, use_ratings=True)
        labels = {example.label for example in examples}
        assert labels <= {1.0, 2.0, 3.0, 4.0, 5.0} or len(labels) > 1

    def test_encode_heldout(self, tiny_log, encoder, split):
        examples = encoder.encode_heldout(split.test, split.history)
        assert len(examples) == len(split.test)

    def test_invalid_max_seq_len(self, tiny_log):
        with pytest.raises(ValueError):
            FeatureEncoder(tiny_log, max_seq_len=0)


class TestFeatureBatch:
    def test_from_examples_shapes(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)[:5]
        batch = FeatureBatch.from_examples(examples)
        assert len(batch) == 5
        assert batch.static_indices.shape == (5, 2)
        assert batch.dynamic_indices.shape == (5, encoder.max_seq_len)
        assert batch.dynamic_mask.shape == (5, encoder.max_seq_len)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            FeatureBatch.from_examples([])

    def test_with_candidate_swaps_only_candidate(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)[:3]
        batch = FeatureBatch.from_examples(examples)
        new_candidates = np.array([15, 15, 15])
        swapped = batch.with_candidate(encoder, new_candidates)
        np.testing.assert_array_equal(swapped.object_ids, new_candidates)
        np.testing.assert_array_equal(
            swapped.static_indices[:, encoder.user_slot],
            batch.static_indices[:, encoder.user_slot],
        )
        np.testing.assert_array_equal(swapped.dynamic_indices, batch.dynamic_indices)
        assert not np.array_equal(
            swapped.static_indices[:, encoder.candidate_slot],
            batch.static_indices[:, encoder.candidate_slot],
        ) or np.array_equal(new_candidates, batch.object_ids)

    def test_with_candidate_size_mismatch(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)[:3]
        batch = FeatureBatch.from_examples(examples)
        with pytest.raises(ValueError):
            batch.with_candidate(encoder, np.array([15]))


class TestBatchIterator:
    def test_covers_all_examples(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        iterator = BatchIterator(examples, batch_size=4, shuffle=True, seed=0)
        seen = sum(len(batch) for batch in iterator)
        assert seen == len(examples)

    def test_len_matches_iteration(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        iterator = BatchIterator(examples, batch_size=5)
        assert len(iterator) == len(list(iterator))

    def test_drop_last(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        iterator = BatchIterator(examples, batch_size=5, drop_last=True)
        assert all(len(batch) == 5 for batch in iterator)

    def test_shuffling_is_seeded(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        first = [batch.object_ids.tolist() for batch in BatchIterator(examples, batch_size=4, seed=3)]
        second = [batch.object_ids.tolist() for batch in BatchIterator(examples, batch_size=4, seed=3)]
        assert first == second

    def test_invalid_arguments(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        with pytest.raises(ValueError):
            BatchIterator(examples, batch_size=0)
        with pytest.raises(ValueError):
            BatchIterator([], batch_size=4)

    def test_collation_cache_matches_from_examples(self, tiny_log, encoder, split):
        """Cached-reindex batches must be bit-identical to per-batch collation."""
        examples = encoder.encode_training_instances(split.train)
        iterator = BatchIterator(examples, batch_size=4, shuffle=True, seed=7)
        reference_order = np.arange(len(examples))
        np.random.default_rng(7).shuffle(reference_order)
        for start, batch in zip(range(0, len(examples), 4), iterator):
            chunk = reference_order[start:start + 4]
            reference = FeatureBatch.from_examples([examples[i] for i in chunk])
            np.testing.assert_array_equal(batch.static_indices, reference.static_indices)
            np.testing.assert_array_equal(batch.dynamic_indices, reference.dynamic_indices)
            np.testing.assert_array_equal(batch.dynamic_mask, reference.dynamic_mask)
            np.testing.assert_array_equal(batch.labels, reference.labels)
            np.testing.assert_array_equal(batch.user_ids, reference.user_ids)
            np.testing.assert_array_equal(batch.object_ids, reference.object_ids)

    def test_batches_are_independent_copies(self, tiny_log, encoder, split):
        """Mutating a yielded batch must not corrupt the collation cache."""
        examples = encoder.encode_training_instances(split.train)
        iterator = BatchIterator(examples, batch_size=4, shuffle=False)
        first = next(iter(iterator))
        first.static_indices[...] = -1
        clean = next(iter(iterator))
        assert not np.any(clean.static_indices == -1)


class TestWithCandidates:
    @pytest.fixture
    def batch(self, tiny_log, encoder, split):
        examples = encoder.encode_training_instances(split.train)
        return FeatureBatch.from_examples(examples[:6])

    def test_fused_layout(self, batch, encoder):
        negatives = np.stack([np.roll(batch.object_ids, shift + 1) for shift in range(3)])
        fused = batch.with_candidates(encoder, negatives)
        assert len(fused) == len(batch) * 4
        assert fused.dynamic_tile == 4
        # Positives first, untouched.
        np.testing.assert_array_equal(fused.object_ids[:len(batch)], batch.object_ids)
        np.testing.assert_array_equal(fused.labels[:len(batch)], batch.labels)
        # Draw-major negative blocks with zero labels and swapped candidates.
        for draw in range(3):
            block = slice(len(batch) * (1 + draw), len(batch) * (2 + draw))
            np.testing.assert_array_equal(fused.object_ids[block], negatives[draw])
            np.testing.assert_array_equal(fused.labels[block], np.zeros(len(batch)))
            np.testing.assert_array_equal(
                fused.static_indices[block, encoder.candidate_slot],
                encoder.static_object_index(negatives[draw]),
            )
            # Histories and users repeat per group.
            np.testing.assert_array_equal(fused.dynamic_indices[block], batch.dynamic_indices)
            np.testing.assert_array_equal(fused.dynamic_mask[block], batch.dynamic_mask)
            np.testing.assert_array_equal(fused.user_ids[block], batch.user_ids)

    def test_matches_stacked_with_candidate(self, batch, encoder):
        """The fused batch equals [batch; with_candidate(draw)...] stacked."""
        negatives = np.stack([np.roll(batch.object_ids, 1), np.roll(batch.object_ids, 2)])
        fused = batch.with_candidates(encoder, negatives)
        singles = [batch.with_candidate(encoder, negatives[d]) for d in range(2)]
        np.testing.assert_array_equal(
            fused.static_indices,
            np.concatenate([batch.static_indices] + [s.static_indices for s in singles]),
        )

    def test_rejects_wrong_shape(self, batch, encoder):
        with pytest.raises(ValueError):
            batch.with_candidates(encoder, batch.object_ids)  # 1-D
        with pytest.raises(ValueError):
            batch.with_candidates(encoder, np.stack([batch.object_ids[:-1]]))
