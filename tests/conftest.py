"""Shared fixtures for the test suite: tiny deterministic datasets, encoders,
batches and models that keep individual tests fast.

When ``REPRO_LOCK_SANITIZER=1`` (the ``make sanitize`` entry point), the
session-scoped fixture below additionally routes every lock the runtime
creates through :mod:`repro.analysis.sanitizer`: acquisition order is
recorded per thread, inversions raise inside the offending test, and the
observed graph is dumped to ``results/lock_sanitizer.json`` at session end
for the observed ⊆ static cross-validation."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analysis import sanitizer as lock_sanitizer_module
from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.data import synthetic
from repro.data.features import FeatureBatch, FeatureEncoder
from repro.data.interactions import Interaction, InteractionLog
from repro.data.sampling import NegativeSampler
from repro.data.split import leave_one_out_split


@pytest.fixture(scope="session", autouse=True)
def lock_sanitizer():
    """Instrumented locks for the whole session when the env flag asks.

    Off by default: ``make test`` runs with real locks.  ``make sanitize``
    sets ``REPRO_LOCK_SANITIZER=1`` and runs the concurrency-bearing suites
    under the wrapper; the observed acquisition graph survives the run as
    ``results/lock_sanitizer.json``.
    """
    if not lock_sanitizer_module.enabled_from_env():
        yield None
        return
    sanitizer = lock_sanitizer_module.install_sanitizer()
    try:
        yield sanitizer
    finally:
        lock_sanitizer_module.uninstall_sanitizer()
        sanitizer.dump(Path("results") / "lock_sanitizer.json")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_log() -> InteractionLog:
    """A hand-built log: 4 users × 6 interactions with known structure."""
    log = InteractionLog(name="tiny")
    timestamp = 0.0
    sequences = {
        0: [10, 11, 12, 13, 14, 15],
        1: [11, 12, 13, 10, 15, 14],
        2: [12, 10, 14, 11, 13, 15],
        3: [15, 14, 13, 12, 11, 10],
    }
    for user_id, objects in sequences.items():
        for object_id in objects:
            timestamp += 1.0
            log.append(Interaction(user_id=user_id, object_id=object_id,
                                   timestamp=timestamp, rating=float(1 + object_id % 5)))
    return log


@pytest.fixture
def poi_log() -> InteractionLog:
    """A small synthetic POI log with genuine sequential structure."""
    return synthetic.generate_poi_checkins(
        synthetic.SyntheticConfig(num_users=25, num_objects=40, interactions_per_user=12, seed=3)
    )


@pytest.fixture
def rating_log() -> InteractionLog:
    return synthetic.generate_rating_log(
        synthetic.SyntheticConfig(num_users=20, num_objects=30, interactions_per_user=10, seed=5)
    )


@pytest.fixture
def encoder(tiny_log: InteractionLog) -> FeatureEncoder:
    return FeatureEncoder(tiny_log, max_seq_len=4)


@pytest.fixture
def split(tiny_log: InteractionLog):
    return leave_one_out_split(tiny_log)


@pytest.fixture
def sampler(tiny_log: InteractionLog) -> NegativeSampler:
    return NegativeSampler(tiny_log, seed=0)


@pytest.fixture
def tiny_batch(tiny_log: InteractionLog, encoder: FeatureEncoder) -> FeatureBatch:
    split_result = leave_one_out_split(tiny_log)
    examples = encoder.encode_training_instances(split_result.train)
    return FeatureBatch.from_examples(examples[:8])


@pytest.fixture
def seqfm_config(encoder: FeatureEncoder) -> SeqFMConfig:
    return SeqFMConfig(
        static_vocab_size=encoder.static_vocab_size,
        dynamic_vocab_size=encoder.dynamic_vocab_size,
        max_seq_len=encoder.max_seq_len,
        embed_dim=8,
        ffn_layers=1,
        dropout=0.0,
        seed=0,
    )


@pytest.fixture
def seqfm_model(seqfm_config: SeqFMConfig) -> SeqFM:
    return SeqFM(seqfm_config)
