"""Tests for the maskable self-attention module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.masks import causal_mask, cross_view_mask
from repro.nn.attention import SelfAttention


class TestSelfAttention:
    def test_output_shape(self, rng):
        attention = SelfAttention(8, rng=rng)
        out = attention(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            SelfAttention(0, rng=rng)

    def test_attention_weights_sum_to_one(self, rng):
        attention = SelfAttention(4, rng=rng)
        weights = attention.attention_weights(Tensor(rng.normal(size=(2, 6, 4))))
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones((2, 6)), atol=1e-10)

    def test_causal_mask_zeroes_future_weights(self, rng):
        attention = SelfAttention(4, rng=rng)
        features = Tensor(rng.normal(size=(1, 5, 4)))
        weights = attention.attention_weights(features, mask=causal_mask(5)[None])
        upper = np.triu_indices(5, k=1)
        assert np.all(weights[0][upper] < 1e-6)

    def test_cross_mask_blocks_within_category(self, rng):
        attention = SelfAttention(4, rng=rng)
        num_static, seq_len = 2, 3
        features = Tensor(rng.normal(size=(1, num_static + seq_len, 4)))
        weights = attention.attention_weights(
            features, mask=cross_view_mask(num_static, seq_len)[None]
        )
        # static→static and dynamic→dynamic entries must be (numerically) zero
        assert weights[0, 0, 1] < 1e-6
        assert weights[0, 1, 0] < 1e-6
        assert weights[0, 3, 4] < 1e-6
        # static→dynamic mass must be positive
        assert weights[0, 0, 2:].sum() > 0.99

    def test_permutation_equivariance_without_mask(self, rng):
        """Unmasked self-attention is permutation-equivariant over positions."""
        attention = SelfAttention(4, rng=rng)
        features = rng.normal(size=(1, 5, 4))
        permutation = np.array([3, 1, 4, 0, 2])
        out = attention(Tensor(features)).data
        out_permuted = attention(Tensor(features[:, permutation, :])).data
        np.testing.assert_allclose(out_permuted, out[:, permutation, :], atol=1e-9)

    def test_masked_output_independent_of_future_positions(self, rng):
        """Changing a future feature must not change earlier outputs (causality)."""
        attention = SelfAttention(4, rng=rng)
        features = rng.normal(size=(1, 5, 4))
        modified = features.copy()
        modified[0, 4] += 10.0
        mask = causal_mask(5)[None]
        out_a = attention(Tensor(features), mask=mask).data
        out_b = attention(Tensor(modified), mask=mask).data
        np.testing.assert_allclose(out_a[0, :4], out_b[0, :4], atol=1e-9)

    def test_gradients_reach_all_projections(self, rng):
        attention = SelfAttention(4, rng=rng)
        out = attention(Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True))
        out.sum().backward()
        assert attention.w_query.grad is not None
        assert attention.w_key.grad is not None
        assert attention.w_value.grad is not None
