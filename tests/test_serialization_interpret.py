"""Tests for model checkpointing, result-table export and the attention
interpretation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import serialization
from repro.core.interpret import attention_maps, top_history_influences, view_contributions
from repro.core.model import SeqFM
from repro.data.features import FeatureBatch
from repro.experiments.reporting import ResultTable


@pytest.fixture
def batch(encoder, tiny_log, split):
    examples = encoder.encode_training_instances(split.train)
    return FeatureBatch.from_examples(examples[:5])


class TestWeightCheckpoints:
    def test_save_load_weights_roundtrip(self, seqfm_model, batch, tmp_path):
        path = tmp_path / "weights.npz"
        expected = seqfm_model.score(batch)
        serialization.save_weights(seqfm_model, path)
        # Perturb and restore.
        for parameter in seqfm_model.parameters():
            parameter.data += 1.0
        serialization.load_weights(seqfm_model, path)
        np.testing.assert_allclose(seqfm_model.score(batch), expected)

    def test_save_seqfm_embeds_config(self, seqfm_model, batch, tmp_path):
        path = tmp_path / "model.npz"
        serialization.save_seqfm(seqfm_model, path)
        restored = serialization.load_seqfm(path)
        assert restored.config == seqfm_model.config
        np.testing.assert_allclose(restored.score(batch), seqfm_model.score(batch))

    def test_load_seqfm_rejects_plain_weight_archive(self, seqfm_model, tmp_path):
        path = tmp_path / "weights.npz"
        serialization.save_weights(seqfm_model, path)
        with pytest.raises(ValueError):
            serialization.load_seqfm(path)

    def test_checkpoint_works_for_baselines(self, encoder, batch, tmp_path):
        from repro.baselines import NFM
        model = NFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=0)
        expected = model.score(batch)
        path = tmp_path / "nfm.npz"
        serialization.save_weights(model, path)
        clone = NFM(encoder.static_vocab_size, encoder.dynamic_vocab_size, embed_dim=8, seed=99)
        serialization.load_weights(clone, path)
        np.testing.assert_allclose(clone.score(batch), expected)


class TestResultTableExport:
    def test_roundtrip(self, tmp_path):
        table = ResultTable(title="Table II — demo", columns=["HR@10", "NDCG@10"])
        table.add_row("FM", {"HR@10": 0.4, "NDCG@10": 0.2})
        table.add_row("SeqFM", {"HR@10": 0.6, "NDCG@10": 0.35})
        table.metadata["dataset_statistics"] = {"users": np.int64(70)}
        path = tmp_path / "table.json"
        serialization.save_result_table(table, path)
        restored = serialization.load_result_table(path)
        assert restored.title == table.title
        assert restored.columns == table.columns
        assert restored.rows == table.rows
        assert restored.metadata["dataset_statistics"]["users"] == 70

    def test_metadata_numpy_values_serialisable(self, tmp_path):
        table = ResultTable(title="demo", columns=["A"])
        table.add_row("x", {"A": 1.0})
        table.metadata["array"] = np.arange(3)
        table.metadata["float"] = np.float64(1.5)
        path = tmp_path / "meta.json"
        serialization.save_result_table(table, path)
        restored = serialization.load_result_table(path)
        assert restored.metadata["array"] == [0, 1, 2]
        assert restored.metadata["float"] == 1.5


class TestInterpretation:
    def test_attention_maps_shapes(self, seqfm_model, batch, encoder):
        maps = attention_maps(seqfm_model, batch, index=0)
        n_static = encoder.num_static_features
        n_dyn = encoder.max_seq_len
        assert maps.static.shape == (n_static, n_static)
        assert maps.dynamic.shape == (n_dyn, n_dyn)
        assert maps.cross.shape == (n_static + n_dyn, n_static + n_dyn)
        assert maps.dynamic_valid.shape == (n_dyn,)

    def test_attention_rows_are_distributions(self, seqfm_model, batch):
        maps = attention_maps(seqfm_model, batch, index=0)
        for matrix in (maps.static, maps.dynamic, maps.cross):
            np.testing.assert_allclose(matrix.sum(axis=-1), np.ones(matrix.shape[0]), atol=1e-8)

    def test_dynamic_map_is_causal(self, seqfm_model, batch):
        # Fully padded rows fall back to uniform attention (they are excluded
        # from pooling), so causality is asserted on the valid rows only: a
        # valid position must not attend to any later position.
        maps = attention_maps(seqfm_model, batch, index=0)
        valid_positions = np.where(maps.dynamic_valid)[0]
        for row in valid_positions:
            future = maps.dynamic[row, row + 1:]
            assert np.all(future < 1e-6)

    def test_index_out_of_range(self, seqfm_model, batch):
        with pytest.raises(IndexError):
            attention_maps(seqfm_model, batch, index=99)

    def test_top_history_influences(self, seqfm_model, batch):
        influences = top_history_influences(seqfm_model, batch, index=0, top_k=3)
        assert 1 <= len(influences) <= 3
        scores = [item["influence"] for item in influences]
        assert scores == sorted(scores, reverse=True)
        for item in influences:
            assert item["dynamic_index"] != 0  # never a padding feature

    def test_top_history_influences_requires_dynamic_view(self, seqfm_config, batch):
        model = SeqFM(seqfm_config.with_overrides(use_dynamic_view=False))
        with pytest.raises(ValueError):
            top_history_influences(model, batch)

    def test_view_contributions_sum_to_interaction_term(self, seqfm_model, batch):
        contributions = view_contributions(seqfm_model, batch)
        assert set(contributions) == {"static", "dynamic", "cross"}
        total = sum(contributions.values())
        seqfm_model.eval()
        from repro.autograd.tensor import no_grad
        with no_grad():
            interaction = seqfm_model._interaction_term(batch).data
        np.testing.assert_allclose(total, interaction, atol=1e-8)
