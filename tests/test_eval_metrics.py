"""Tests for HR@K, NDCG@K, AUC, RMSE, MAE and RRSE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.classification import auc_score, evaluate_classification, rmse_score
from repro.eval.ranking import evaluate_ranking, hit_ratio_at_k, ndcg_at_k
from repro.eval.regression import (
    evaluate_regression,
    mean_absolute_error,
    root_relative_squared_error,
)


class TestRankingMetrics:
    def test_hit_when_ground_truth_on_top(self):
        scores = np.array([5.0, 1.0, 2.0, 3.0])
        assert hit_ratio_at_k(scores, 0, k=1) == 1.0
        assert ndcg_at_k(scores, 0, k=1) == pytest.approx(1.0)

    def test_miss_when_ground_truth_out_of_top_k(self):
        scores = np.array([0.0, 5.0, 4.0, 3.0])
        assert hit_ratio_at_k(scores, 0, k=2) == 0.0
        assert ndcg_at_k(scores, 0, k=2) == 0.0

    def test_ndcg_discount_at_rank_two(self):
        scores = np.array([4.0, 5.0, 1.0])
        assert ndcg_at_k(scores, 0, k=5) == pytest.approx(1.0 / np.log2(3))

    def test_rank_ties_are_pessimistic(self):
        scores = np.zeros(10)
        # All-equal scores: ground truth at position 0 ranks first among ties.
        assert hit_ratio_at_k(scores, 0, k=1) == 1.0
        # Ground truth at a later position ranks behind the earlier ties.
        assert hit_ratio_at_k(scores, 5, k=5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k(np.array([1.0]), 0, k=0)
        with pytest.raises(ValueError):
            ndcg_at_k(np.array([1.0]), 0, k=0)

    def test_evaluate_ranking_aggregates(self):
        score_lists = [np.array([3.0, 1.0, 2.0]), np.array([0.0, 5.0, 1.0])]
        positions = [0, 0]
        metrics = evaluate_ranking(score_lists, positions, cutoffs=(1, 2))
        assert metrics.hr[1] == pytest.approx(0.5)
        assert metrics.num_cases == 2
        flat = metrics.as_dict()
        assert set(flat) == {"HR@1", "HR@2", "NDCG@1", "NDCG@2"}

    def test_evaluate_ranking_empty(self):
        metrics = evaluate_ranking([], [], cutoffs=(5,))
        assert metrics.hr[5] == 0.0

    def test_evaluate_ranking_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_ranking([np.array([1.0])], [0, 1])

    def test_perfect_ranker_scores_one(self):
        rng = np.random.default_rng(0)
        score_lists, positions = [], []
        for _ in range(20):
            scores = rng.random(50)
            scores[7] = 2.0  # ground truth always highest
            score_lists.append(scores)
            positions.append(7)
        metrics = evaluate_ranking(score_lists, positions, cutoffs=(5, 10))
        assert metrics.hr[5] == 1.0
        assert metrics.ndcg[10] == pytest.approx(1.0)

    def test_random_ranker_hr_close_to_k_over_n(self):
        rng = np.random.default_rng(1)
        n_candidates, k, cases = 100, 10, 400
        hits = []
        for _ in range(cases):
            scores = rng.random(n_candidates)
            hits.append(hit_ratio_at_k(scores, 0, k=k))
        assert np.mean(hits) == pytest.approx(k / n_candidates, abs=0.05)


class TestClassificationMetrics:
    def test_auc_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 1.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000).astype(float)
        scores = rng.random(2000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_auc_inverted_scores(self):
        labels = np.array([1, 0])
        scores = np.array([0.1, 0.9])
        assert auc_score(labels, scores) == 0.0

    def test_auc_handles_ties(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            auc_score(np.ones(5), np.random.random(5))

    def test_auc_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_score(np.ones(3), np.ones(4))

    def test_rmse(self):
        labels = np.array([1.0, 0.0])
        probabilities = np.array([1.0, 0.5])
        assert rmse_score(labels, probabilities) == pytest.approx(np.sqrt(0.125))

    def test_evaluate_classification_bundle(self):
        labels = np.array([1, 1, 0, 0], dtype=float)
        probabilities = np.array([0.9, 0.7, 0.3, 0.2])
        metrics = evaluate_classification(labels, probabilities)
        assert metrics.auc == 1.0
        assert metrics.num_cases == 4
        assert set(metrics.as_dict()) == {"AUC", "RMSE"}


class TestRegressionMetrics:
    def test_mae(self):
        assert mean_absolute_error(np.array([1.0, 2.0]), np.array([2.0, 0.0])) == pytest.approx(1.5)

    def test_mae_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.ones(2), np.ones(3))

    def test_rrse_of_mean_predictor_is_one(self):
        targets = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = np.full(4, targets.mean())
        assert root_relative_squared_error(targets, predictions) == pytest.approx(1.0)

    def test_rrse_of_perfect_predictor_is_zero(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert root_relative_squared_error(targets, targets.copy()) == 0.0

    def test_rrse_constant_targets(self):
        targets = np.ones(4)
        assert root_relative_squared_error(targets, targets.copy()) == 0.0
        assert root_relative_squared_error(targets, targets + 1) == float("inf")

    def test_evaluate_regression_bundle(self):
        targets = np.array([3.0, 4.0, 5.0])
        predictions = np.array([3.5, 4.0, 4.5])
        metrics = evaluate_regression(targets, predictions)
        assert metrics.mae == pytest.approx(1.0 / 3.0)
        assert metrics.num_cases == 3
        assert set(metrics.as_dict()) == {"MAE", "RRSE"}

    def test_paper_equation_28_equivalence(self):
        """RRSE as implemented equals sqrt(Σ(ŷ-y)² / (|S|·VAR)) from Eq. 28."""
        rng = np.random.default_rng(0)
        targets = rng.normal(size=50)
        predictions = targets + rng.normal(scale=0.3, size=50)
        variance = targets.var()
        expected = np.sqrt(np.sum((predictions - targets) ** 2) / (50 * variance))
        assert root_relative_squared_error(targets, predictions) == pytest.approx(expected, rel=1e-9)
