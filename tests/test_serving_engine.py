"""Parity tests: the graph-free serving engine must reproduce the autograd
forward pass exactly (ISSUE acceptance: agreement within 1e-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.core.tasks import SeqFMClassifier, SeqFMRegressor
from repro.data.features import FeatureBatch
from repro.serving import InferenceEngine

ATOL = 1e-10


def random_batch(config: SeqFMConfig, batch_size: int, seed: int = 7) -> FeatureBatch:
    """A synthetic batch with mixed-length (left-padded) histories."""
    rng = np.random.default_rng(seed)
    n = config.max_seq_len
    static = rng.integers(0, config.static_vocab_size, (batch_size, 2), dtype=np.int64)
    lengths = rng.integers(0, n + 1, batch_size)
    dynamic = np.zeros((batch_size, n), dtype=np.int64)
    mask = np.zeros((batch_size, n), dtype=np.float64)
    for row, length in enumerate(lengths):
        if length:
            dynamic[row, n - length:] = rng.integers(
                1, config.dynamic_vocab_size, length, dtype=np.int64
            )
            mask[row, n - length:] = 1.0
    return FeatureBatch(
        static_indices=static,
        dynamic_indices=dynamic,
        dynamic_mask=mask,
        labels=rng.random(batch_size),
        user_ids=np.arange(batch_size, dtype=np.int64),
        object_ids=np.arange(batch_size, dtype=np.int64),
    )


def trained_like(config: SeqFMConfig, seed: int = 11) -> SeqFM:
    """A model whose weights were perturbed away from initialisation."""
    model = SeqFM(config)
    rng = np.random.default_rng(seed)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.2, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


BASE = dict(static_vocab_size=40, dynamic_vocab_size=30, max_seq_len=8,
            embed_dim=8, dropout=0.4, seed=3)

ABLATIONS = [
    {},
    {"ffn_layers": 3},
    {"pooling": "last"},
    {"share_ffn": False},
    {"use_layer_norm": False},
    {"use_residual": False},
    {"use_static_view": False},
    {"use_dynamic_view": False},
    {"use_cross_view": False},
    {"use_static_view": False, "use_cross_view": False},
    {"use_layer_norm": False, "use_residual": False, "ffn_layers": 2},
]


class TestEngineParity:
    @pytest.mark.parametrize("overrides", ABLATIONS)
    def test_score_matches_model_score(self, overrides):
        config = SeqFMConfig(**{**BASE, **overrides})
        model = trained_like(config)
        batch = random_batch(config, batch_size=12)
        expected = model.score(batch)
        actual = InferenceEngine(model).score(batch)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=ATOL)

    def test_parity_on_conftest_model(self, seqfm_model, tiny_batch):
        expected = seqfm_model.score(tiny_batch)
        actual = InferenceEngine(seqfm_model).score(tiny_batch)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=ATOL)

    def test_parity_survives_training_mode(self):
        """Engine output is eval-mode regardless of the model's current mode."""
        config = SeqFMConfig(**BASE)
        model = trained_like(config)
        batch = random_batch(config, batch_size=6)
        model.train()  # dropout active for autograd forward, not for score()
        np.testing.assert_allclose(
            InferenceEngine(model).score(batch), model.score(batch), rtol=0.0, atol=ATOL
        )
        assert model.training  # engine must not flip the model's mode

    def test_classify_matches_task_head(self):
        config = SeqFMConfig(**BASE)
        classifier = SeqFMClassifier(config)
        model = classifier.scorer
        rng = np.random.default_rng(0)
        for parameter in model.parameters():
            parameter.data += rng.normal(0.0, 0.3, parameter.data.shape)
        batch = random_batch(config, batch_size=9)
        np.testing.assert_allclose(
            InferenceEngine(model).classify(batch),
            classifier.predict_probability(batch),
            rtol=0.0,
            atol=ATOL,
        )

    def test_regress_matches_task_head(self):
        config = SeqFMConfig(**BASE)
        regressor = SeqFMRegressor(config)
        batch = random_batch(config, batch_size=9)
        np.testing.assert_allclose(
            InferenceEngine(regressor.scorer).regress(batch),
            regressor.predict(batch),
            rtol=0.0,
            atol=ATOL,
        )

    def test_engine_sees_weight_updates(self):
        """Weights are read by reference: updating the model updates the engine."""
        config = SeqFMConfig(**BASE)
        model = trained_like(config)
        engine = InferenceEngine(model)
        batch = random_batch(config, batch_size=4)
        before = engine.score(batch)
        model.projection.data[...] += 1.0
        after = engine.score(batch)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, model.score(batch), rtol=0.0, atol=ATOL)

    def test_engine_does_not_mutate_model(self):
        config = SeqFMConfig(**BASE)
        model = trained_like(config)
        state_before = model.state_dict()
        InferenceEngine(model).score(random_batch(config, batch_size=5))
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, state_before[name])

    def test_all_padding_rows_are_finite(self):
        """Fully-padded histories must not produce NaNs (uniform-softmax rows)."""
        config = SeqFMConfig(**BASE)
        model = trained_like(config)
        batch = random_batch(config, batch_size=4)
        batch.dynamic_indices[0, :] = 0
        batch.dynamic_mask[0, :] = 0.0
        scores = InferenceEngine(model).score(batch)
        assert np.isfinite(scores).all()
        np.testing.assert_allclose(scores, model.score(batch), rtol=0.0, atol=ATOL)
