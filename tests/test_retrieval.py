"""Tests for the candidate retrieval subsystem (`repro.retrieval`).

Covers the index snapshot, both search backends (exact parity, IVF recall and
its n_probe dial), the query encoder, the two-stage pipeline's end-to-end
exactness against brute-force full-catalog ranking, and the serving wiring:
engine endpoints, the micro-batcher recommend head, registry index
management (including the register/load overwrite guards), the recommend
service head and the CLI subcommands.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.config import SeqFMConfig
from repro.core.model import SeqFM
from repro.nn import kernels
from repro.retrieval import (
    ExactIndex,
    IVFIndex,
    ItemIndex,
    QueryEncoder,
    RetrievePipeline,
    recall_at,
)
from repro.serving import (
    InferenceEngine,
    ModelRegistry,
    OrphanedIndexWarning,
    RecommendRequest,
    recommend_batch,
    serve_jsonl,
)

NUM_USERS = 10
NUM_ITEMS = 50
CONFIG = SeqFMConfig(
    static_vocab_size=NUM_USERS + NUM_ITEMS,
    dynamic_vocab_size=NUM_ITEMS + 1,
    max_seq_len=6,
    embed_dim=16,
    dropout=0.0,
    seed=11,
)
CATALOG = np.arange(NUM_USERS, NUM_USERS + NUM_ITEMS, dtype=np.int64)


@pytest.fixture
def model() -> SeqFM:
    model = SeqFM(CONFIG)
    rng = np.random.default_rng(4)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.15, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    return model


@pytest.fixture
def engine(model: SeqFM) -> InferenceEngine:
    return InferenceEngine(model)


@pytest.fixture
def index(engine: InferenceEngine) -> ItemIndex:
    return ItemIndex.from_model(engine, CATALOG)


def user_request(user: int = 3, length: int = 5, seed: int = 9):
    rng = np.random.default_rng(seed + user)
    profile = np.array([user, int(CATALOG[0])], dtype=np.int64)
    history = [int(item) for item in rng.integers(1, CONFIG.dynamic_vocab_size, length)]
    return profile, history


def clustered_catalog_model(num_items: int = 1500, num_clusters: int = 30, seed: int = 0):
    """A model whose item embeddings form clusters — the realistic IVF regime."""
    config = SeqFMConfig(
        static_vocab_size=NUM_USERS + num_items,
        dynamic_vocab_size=num_items + 1,
        max_seq_len=6,
        embed_dim=16,
        dropout=0.0,
        seed=seed,
    )
    model = SeqFM(config)
    rng = np.random.default_rng(seed + 1)
    for parameter in model.parameters():
        parameter.data += rng.normal(0.0, 0.15, parameter.data.shape)
    model.dynamic_embedding.reset_padding()
    catalog = np.arange(NUM_USERS, NUM_USERS + num_items, dtype=np.int64)
    centers = rng.normal(0.0, 0.5, (num_clusters, config.embed_dim))
    members = rng.integers(0, num_clusters, num_items)
    model.static_embedding.weight.data[catalog] = (
        centers[members] + rng.normal(0.0, 0.08, (num_items, config.embed_dim))
    )
    return model, catalog, config


# --------------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------------- #
class TestBlockedTopkMatmul:
    def test_matches_full_topk_across_block_sizes(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(257, 9))
        query = rng.normal(size=9)
        scores = matrix @ query
        expected = kernels.top_k(scores, 10)
        for block_size in (1, 7, 64, 256, 257, 1024):
            indices, top_scores = kernels.blocked_topk_matmul(
                query, matrix, 10, block_size=block_size
            )
            np.testing.assert_array_equal(indices, expected)
            # blocked matvecs may round differently than the fused one (BLAS
            # summation order), so scores agree to float precision, not bitwise
            np.testing.assert_allclose(top_scores, scores[expected], rtol=0, atol=1e-12)

    def test_tie_break_matches_unblocked(self):
        # Rows 0/3/6 identical → ties break toward the lower row index, even
        # when the tied rows land in different blocks.
        matrix = np.zeros((7, 2))
        matrix[[0, 3, 6]] = [1.0, 0.0]
        query = np.array([1.0, 0.0])
        indices, _ = kernels.blocked_topk_matmul(query, matrix, 2, block_size=2)
        np.testing.assert_array_equal(indices, [0, 3])

    def test_k_larger_than_rows_returns_all(self):
        matrix = np.eye(3)
        indices, scores = kernels.blocked_topk_matmul(np.array([1.0, 0, 0]), matrix, 10)
        assert indices.shape == (3,) and scores[0] == 1.0

    def test_row_bias_shifts_selection(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(64, 4))
        query = rng.normal(size=4)
        bias = rng.normal(size=64)
        expected = kernels.top_k(matrix @ query + bias, 7)
        for block_size in (3, 64):
            indices, scores = kernels.blocked_topk_matmul(
                query, matrix, 7, block_size=block_size, row_bias=bias
            )
            np.testing.assert_array_equal(indices, expected)
            np.testing.assert_allclose(scores, (matrix @ query + bias)[expected],
                                       atol=1e-12)
        with pytest.raises(ValueError):
            kernels.blocked_topk_matmul(query, matrix, 7, row_bias=bias[:10])

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            kernels.blocked_topk_matmul(np.zeros(3), np.zeros((4, 2)), 1)
        with pytest.raises(ValueError):
            kernels.blocked_topk_matmul(np.zeros(2), np.zeros((4, 2)), 0)
        with pytest.raises(ValueError):
            kernels.blocked_topk_matmul(np.zeros(2), np.zeros((4, 2)), 1, block_size=0)


class TestKmeansAssign:
    def test_matches_naive_distances(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(100, 5))
        centroids = rng.normal(size=(7, 5))
        naive = (
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1).argmin(axis=1)
        )
        for block_size in (1, 13, 100, 1000):
            np.testing.assert_array_equal(
                kernels.kmeans_assign(points, centroids, block_size=block_size), naive
            )

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            kernels.kmeans_assign(np.zeros((4, 3)), np.zeros((2, 5)))


# --------------------------------------------------------------------------- #
# ItemIndex snapshot
# --------------------------------------------------------------------------- #
class TestItemIndex:
    def test_snapshot_matches_model_tables(self, model, index):
        assert index.num_items == NUM_ITEMS and index.dim == CONFIG.embed_dim
        np.testing.assert_array_equal(index.item_ids, CATALOG)
        np.testing.assert_array_equal(
            index.embeddings, model.static_embedding.weight.data[CATALOG]
        )
        np.testing.assert_array_equal(index.weights, model.static_linear.data[CATALOG])

    def test_ids_are_deduplicated_and_sorted(self, engine):
        shuffled = [int(CATALOG[5]), int(CATALOG[2]), int(CATALOG[5]), int(CATALOG[9])]
        built = ItemIndex.from_model(engine, shuffled)
        np.testing.assert_array_equal(
            built.item_ids, sorted({CATALOG[2], CATALOG[5], CATALOG[9]})
        )

    def test_rejects_out_of_vocab_and_empty(self, engine):
        with pytest.raises(IndexError):
            ItemIndex.from_model(engine, [CONFIG.static_vocab_size])
        with pytest.raises(ValueError):
            ItemIndex.from_model(engine, [])

    def test_save_load_round_trip(self, index, tmp_path):
        path = index.save(tmp_path / "items.npz")
        loaded = ItemIndex.load(path)
        np.testing.assert_array_equal(loaded.item_ids, index.item_ids)
        np.testing.assert_array_equal(loaded.vectors, index.vectors)
        np.testing.assert_array_equal(loaded.probe_positions, index.probe_positions)
        assert loaded.has_partitions == index.has_partitions
        np.testing.assert_array_equal(loaded.assignments, index.assignments)
        np.testing.assert_array_equal(loaded.centroids, index.centroids)
        np.testing.assert_array_equal(loaded.representative_positions,
                                      index.representative_positions)

    def test_unpartitioned_round_trip(self, engine, tmp_path):
        bare = ItemIndex.from_model(engine, CATALOG, partition=False)
        assert not bare.has_partitions
        loaded = ItemIndex.load(bare.save(tmp_path / "bare.npz"))
        assert not loaded.has_partitions

    def test_partition_block_invariants(self, index):
        assert index.has_partitions
        assert index.assignments.shape == (index.num_items,)
        assert index.assignments.min() >= 0
        assert index.assignments.max() < index.n_partitions
        reps = index.representative_positions
        # Each representative belongs to the partition it represents.
        np.testing.assert_array_equal(index.assignments[reps],
                                      np.arange(index.n_partitions))

    def test_build_partitions_idempotent(self, index):
        centroids = index.centroids.copy()
        index.build_partitions(n_partitions=index.n_partitions)
        np.testing.assert_array_equal(index.centroids, centroids)
        # n_partitions=None reuses whatever block exists — the loaded-from-disk
        # path must not silently re-run k-means with the default count.
        index.build_partitions()
        np.testing.assert_array_equal(index.centroids, centroids)

    def test_ivf_snapshot_survives_index_repartition(self, index):
        """An IVFIndex must stay internally consistent when another consumer
        re-partitions the shared ItemIndex with a different count."""
        rng = np.random.default_rng(9)
        query = rng.normal(size=index.dim + 1)
        first = IVFIndex(index, n_partitions=5)
        expected_ids, expected_scores = first.search(query, 12, n_probe=5)
        IVFIndex(index, n_partitions=9)  # rebuilds the shared partition block
        assert index.n_partitions == 9 and first.n_partitions == 5
        ids, scores = first.search(query, 12, n_probe=5)  # full probe = exact
        np.testing.assert_array_equal(ids, expected_ids)
        np.testing.assert_allclose(scores, expected_scores, atol=1e-12)
        # Offsets fitted against the new 9-partition block must be rejected.
        with pytest.raises(ValueError, match="one entry per partition"):
            first.search(query, 5, partition_offsets=np.zeros(9))

    def test_loaded_partition_block_reused_by_ivf(self, index, tmp_path):
        index.build_partitions(n_partitions=7)
        loaded = ItemIndex.load(index.save(tmp_path / "items.npz"))
        ivf = IVFIndex(loaded)  # no count given → persisted block wins
        assert ivf.n_partitions == 7
        np.testing.assert_array_equal(loaded.centroids, index.centroids)

    def test_empty_partitions_are_compacted(self):
        # Eight identical points tie toward the lowest centroid index, so
        # k-means can never populate more than one cluster — the block must
        # compact instead of crashing on an empty representative set.
        vectors = np.ones((8, 5))
        duplicated = ItemIndex(item_ids=np.arange(8), vectors=vectors,
                               probe_positions=np.arange(8))
        duplicated.build_partitions(n_partitions=4)
        assert duplicated.n_partitions == 1
        assert np.bincount(duplicated.assignments).min() >= 1
        np.testing.assert_array_equal(
            duplicated.assignments[duplicated.representative_positions],
            np.arange(duplicated.n_partitions))
        ids, scores = IVFIndex(duplicated).search(np.ones(5), 3)
        assert ids.shape == (3,)

    def test_load_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "not_an_index.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(ValueError):
            ItemIndex.load(path)

    def test_probe_positions_within_catalog(self, index):
        assert index.probe_positions.min() >= 0
        assert index.probe_positions.max() < index.num_items
        assert len(set(index.probe_positions.tolist())) == index.probe_positions.size


# --------------------------------------------------------------------------- #
# Search backends
# --------------------------------------------------------------------------- #
class TestExactIndex:
    def test_matches_naive_full_scan(self, index):
        rng = np.random.default_rng(3)
        query = rng.normal(size=index.dim + 1)
        ids, scores = ExactIndex(index, block_size=7).search(query, 12)
        full = index.vectors @ query
        order = np.lexsort((np.arange(index.num_items), -full))[:12]
        np.testing.assert_array_equal(ids, index.item_ids[order])
        np.testing.assert_allclose(scores, full[order], rtol=0, atol=1e-12)

    def test_rejects_unaugmented_query(self, index):
        with pytest.raises(ValueError):
            ExactIndex(index).search(np.zeros(index.dim), 5)

    def test_partition_offsets_applied(self, index):
        rng = np.random.default_rng(8)
        query = rng.normal(size=index.dim + 1)
        offsets = rng.normal(size=index.n_partitions)
        ids, scores = ExactIndex(index, block_size=11).search(
            query, 9, partition_offsets=offsets
        )
        full = index.vectors @ query + offsets[index.assignments]
        order = np.lexsort((np.arange(index.num_items), -full))[:9]
        np.testing.assert_array_equal(ids, index.item_ids[order])
        np.testing.assert_allclose(scores, full[order], atol=1e-12)

    def test_rejects_offsets_without_partitions(self, engine):
        bare = ItemIndex.from_model(engine, CATALOG, partition=False)
        with pytest.raises(ValueError):
            ExactIndex(bare).search(np.zeros(bare.dim + 1), 5,
                                    partition_offsets=np.zeros(3))


class TestIVFIndex:
    def test_full_probe_parity_with_exact(self, index):
        rng = np.random.default_rng(5)
        exact = ExactIndex(index)
        ivf = IVFIndex(index, n_partitions=8, seed=0)
        for _ in range(5):
            query = rng.normal(size=index.dim + 1)
            offsets = rng.normal(size=index.n_partitions)
            ids_exact, scores_exact = exact.search(query, 17)
            ids_ivf, scores_ivf = ivf.search(query, 17, n_probe=8)
            np.testing.assert_array_equal(ids_ivf, ids_exact)
            np.testing.assert_allclose(scores_ivf, scores_exact, rtol=0, atol=1e-12)
            # and with calibration offsets applied on both sides
            ids_exact, scores_exact = exact.search(query, 17, partition_offsets=offsets)
            ids_ivf, scores_ivf = ivf.search(query, 17, partition_offsets=offsets,
                                             n_probe=8)
            np.testing.assert_array_equal(ids_ivf, ids_exact)
            np.testing.assert_allclose(scores_ivf, scores_exact, rtol=0, atol=1e-12)

    def test_default_n_probe_recall_at_100(self):
        """recall@100 ≥ 0.95 vs the exact oracle at default settings."""
        model, catalog, config = clustered_catalog_model()
        engine = InferenceEngine(model)
        built = ItemIndex.from_model(engine, catalog)
        exact = ExactIndex(built)
        ivf = IVFIndex(built)  # default n_partitions = ⌈√n⌉, n_probe = ⌈parts/4⌉
        assert ivf.n_probe < ivf.n_partitions  # genuinely pruned, not degenerate
        encoder = QueryEncoder(engine, built)
        recalls = []
        rng = np.random.default_rng(17)
        for user in range(8):
            history = [int(x) for x in rng.integers(1, config.dynamic_vocab_size, 5)]
            query = encoder.encode(np.array([user, int(catalog[0])]), history)
            ids_exact, _ = exact.search(query.vector, 100)
            ids_ivf, _ = ivf.search(query.vector, 100)
            recalls.append(recall_at(ids_exact, ids_ivf))
        assert np.mean(recalls) >= 0.95, f"IVF recall@100 {np.mean(recalls):.3f}"

    def test_n_probe_dial_monotone_on_average(self, index):
        rng = np.random.default_rng(6)
        exact = ExactIndex(index)
        ivf = IVFIndex(index, n_partitions=10, seed=0)
        queries = rng.normal(size=(6, index.dim + 1))
        mean_recall = {}
        for probe in (1, 5, 10):
            recalls = []
            for query in queries:
                ids_exact, _ = exact.search(query, 10)
                ids_ivf, _ = ivf.search(query, 10, n_probe=probe)
                recalls.append(recall_at(ids_exact, ids_ivf))
            mean_recall[probe] = np.mean(recalls)
        assert mean_recall[1] <= mean_recall[5] + 1e-12 <= mean_recall[10] + 2e-12
        assert mean_recall[10] == 1.0

    def test_every_partition_non_empty(self, index):
        ivf = IVFIndex(index, n_partitions=12, seed=2)
        sizes = np.diff(ivf._offsets)
        assert sizes.min() >= 1 and sizes.sum() == index.num_items

    def test_rejects_bad_n_probe(self, index):
        ivf = IVFIndex(index, n_partitions=5)
        with pytest.raises(ValueError):
            ivf.search(np.zeros(index.dim + 1), 10, n_probe=6)
        with pytest.raises(ValueError):
            IVFIndex(index, n_partitions=5, n_probe=0)


# --------------------------------------------------------------------------- #
# Query encoder
# --------------------------------------------------------------------------- #
class TestQueryEncoder:
    def test_surrogate_tracks_model_scores(self, engine, index):
        profile, history = user_request()
        encoder = QueryEncoder(engine, index)
        query = encoder.encode(profile, history)
        surrogate = index.vectors @ query.vector + query.bias
        exact = engine.rank_candidates(profile, CATALOG, history)
        correlation = np.corrcoef(surrogate, exact)[0, 1]
        assert correlation > 0.7, f"surrogate correlation {correlation:.3f}"
        assert np.isfinite(query.fit_residual)

    def test_reuses_supplied_plan(self, engine, index):
        profile, history = user_request()
        plan = engine.prepare_ranking(profile, history)
        encoder = QueryEncoder(engine, index)
        query = encoder.encode(profile, history, plan=plan)
        assert query.plan is plan
        fresh = encoder.encode(profile, history)
        np.testing.assert_allclose(query.vector, fresh.vector, atol=1e-12)

    def test_rejects_dim_mismatch(self, index):
        other = SeqFM(SeqFMConfig(static_vocab_size=30, dynamic_vocab_size=20,
                                  max_seq_len=4, embed_dim=8, seed=0))
        with pytest.raises(ValueError):
            QueryEncoder(InferenceEngine(other), index)

    def test_emits_one_offset_per_partition(self, engine, index):
        profile, history = user_request()
        query = QueryEncoder(engine, index).encode(profile, history)
        assert query.partition_offsets is not None
        assert query.partition_offsets.shape == (index.n_partitions,)
        bare = ItemIndex.from_model(engine, CATALOG, partition=False)
        uncalibrated = QueryEncoder(engine, bare).encode(profile, history)
        assert uncalibrated.partition_offsets is None

    def test_calibration_recovers_clustered_winners(self):
        """On a clustered catalog the per-partition offsets are load-bearing:
        the calibrated shortlist covers the true top-10 where the plain
        linear surrogate misses it (cluster-level nonlinearity)."""
        model, catalog, config = clustered_catalog_model()
        engine = InferenceEngine(model)
        built = ItemIndex.from_model(engine, catalog)
        exact = ExactIndex(built)
        encoder = QueryEncoder(engine, built)
        rng = np.random.default_rng(23)
        covered = uncalibrated_covered = 0.0
        for user in range(4):
            history = [int(x) for x in rng.integers(1, config.dynamic_vocab_size, 5)]
            profile = np.array([user, int(catalog[0])], dtype=np.int64)
            plan = engine.prepare_ranking(profile, history)
            true = engine.rank_candidates(profile, catalog, plan=plan)
            true_top10 = catalog[kernels.top_k(true, 10)]
            query = encoder.encode(profile, history, plan=plan)
            ids, _ = exact.search(query.vector, 100,
                                  partition_offsets=query.partition_offsets)
            covered += recall_at(true_top10, ids) / 4
            plain_ids, _ = exact.search(query.vector, 100)
            uncalibrated_covered += recall_at(true_top10, plain_ids) / 4
        assert covered >= 0.95, f"calibrated coverage {covered:.2f}"
        assert covered >= uncalibrated_covered


# --------------------------------------------------------------------------- #
# Two-stage pipeline
# --------------------------------------------------------------------------- #
class TestRetrievePipeline:
    def test_full_fanout_matches_brute_force_exactly(self, engine, index):
        """The ISSUE acceptance oracle: ExactIndex + n_retrieve ≥ catalog
        reproduces 'score every catalog item then top-K' to 1e-10."""
        pipeline = RetrievePipeline(engine, ExactIndex(index),
                                    n_retrieve=index.num_items)
        for user in range(4):
            profile, history = user_request(user=user)
            ranked = pipeline.retrieve_then_rank(profile, 10, history)
            brute_ids, brute_scores = engine.rank_topk(profile, CATALOG, 10, history)
            np.testing.assert_array_equal(ranked.candidates, brute_ids)
            np.testing.assert_allclose(ranked.scores, brute_scores, rtol=0, atol=1e-10)

    def test_narrow_fanout_still_finds_topk(self, engine, index):
        """With a shortlist 5× the cut, the surrogate covers the true top-K
        on this catalog (deterministic seeds)."""
        pipeline = RetrievePipeline(engine, ExactIndex(index), n_retrieve=25)
        profile, history = user_request()
        ranked = pipeline.retrieve_then_rank(profile, 5, history)
        brute_ids, _ = engine.rank_topk(profile, CATALOG, 5, history)
        assert recall_at(brute_ids, ranked.candidates) == 1.0
        np.testing.assert_array_equal(ranked.candidates, brute_ids)

    def test_retrieve_returns_shortlist_with_plan(self, engine, index):
        pipeline = RetrievePipeline(engine, ExactIndex(index), n_retrieve=7)
        profile, history = user_request()
        shortlist = pipeline.retrieve(profile, history)
        assert len(shortlist) == 7
        assert np.isin(shortlist.candidates, CATALOG).all()
        assert shortlist.query.plan is not None

    def test_rejects_bad_parameters(self, engine, index):
        with pytest.raises(ValueError):
            RetrievePipeline(engine, ExactIndex(index), n_retrieve=0)
        pipeline = RetrievePipeline(engine, ExactIndex(index))
        with pytest.raises(ValueError):
            pipeline.retrieve_then_rank([0, int(CATALOG[0])], 0)

    def test_ivf_backend_end_to_end(self, engine, index):
        ivf = IVFIndex(index, n_partitions=7, n_probe=7)
        pipeline = RetrievePipeline(engine, ivf, n_retrieve=index.num_items)
        profile, history = user_request()
        ranked = pipeline.retrieve_then_rank(profile, 5, history)
        brute_ids, brute_scores = engine.rank_topk(profile, CATALOG, 5, history)
        np.testing.assert_array_equal(ranked.candidates, brute_ids)
        np.testing.assert_allclose(ranked.scores, brute_scores, rtol=0, atol=1e-10)


class TestEngineEndpoints:
    def test_retrieve_and_retrieve_then_rank(self, engine, index):
        profile, history = user_request()
        ids, scores = engine.retrieve(ExactIndex(index), profile, history, n=9)
        assert ids.shape == (9,) and scores.shape == (9,)
        top, top_scores = engine.retrieve_then_rank(
            ExactIndex(index), profile, 4, history, n_retrieve=index.num_items
        )
        brute_ids, brute_scores = engine.rank_topk(profile, CATALOG, 4, history)
        np.testing.assert_array_equal(top, brute_ids)
        np.testing.assert_allclose(top_scores, brute_scores, rtol=0, atol=1e-10)


# --------------------------------------------------------------------------- #
# Micro-batcher recommend head
# --------------------------------------------------------------------------- #
class TestRecommendHead:
    def test_recommend_head_uses_sequence_store(self, model, engine, index):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.attach_index("m", index, n_retrieve=index.num_items)
        entry = registry.get("m")
        batcher = entry.batcher(head="recommend")
        profile, history = user_request()
        request = RecommendRequest(static_indices=profile, history=history,
                                   user_id=3, k=5)
        first = batcher.recommend(request)
        second = batcher.recommend(request)
        np.testing.assert_array_equal(first.candidates, second.candidates)
        assert entry.sequence_store.stats.hits >= 1
        brute_ids, _ = engine.rank_topk(profile, CATALOG, 5, history)
        np.testing.assert_array_equal(first.candidates, brute_ids)

    def test_default_k_applied(self, model, index):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.attach_index("m", index, n_retrieve=index.num_items)
        profile, history = user_request()
        result = registry.get("m").batcher(head="recommend").recommend(
            RecommendRequest(static_indices=profile, history=history)
        )
        assert len(result) == 10  # DEFAULT_RECOMMEND_K

    def test_recommend_without_index_raises(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError, match="no item index"):
            registry.get("m").batcher(head="recommend")


# --------------------------------------------------------------------------- #
# Registry: index management and overwrite guards
# --------------------------------------------------------------------------- #
class TestRegistryIndex:
    def test_build_save_load_recommend_round_trip(self, model, tmp_path):
        registry = ModelRegistry()
        registry.register("m", model)
        built = registry.build_index("m", CATALOG, n_retrieve=NUM_ITEMS)
        path = registry.save_index("m", tmp_path / "items.npz")

        fresh = ModelRegistry()
        fresh.register("m2", model)
        fresh.load_index("m2", path, n_retrieve=NUM_ITEMS)
        profile, history = user_request()
        first = registry.recommend("m", profile, 5, history=history, user_id=3)
        second = fresh.recommend("m2", profile, 5, history=history, user_id=3)
        np.testing.assert_array_equal(first.candidates, second.candidates)
        np.testing.assert_allclose(first.scores, second.scores, atol=1e-12)
        assert built.num_items == NUM_ITEMS

    def test_recommend_matches_brute_force(self, model, engine):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.build_index("m", CATALOG, n_retrieve=NUM_ITEMS)
        profile, history = user_request(user=7)
        result = registry.recommend("m", profile, 6, history=history)
        brute_ids, brute_scores = engine.rank_topk(profile, CATALOG, 6, history)
        np.testing.assert_array_equal(result.candidates, brute_ids)
        np.testing.assert_allclose(result.scores, brute_scores, rtol=0, atol=1e-10)

    def test_ivf_backend_option(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.build_index("m", CATALOG, backend="ivf", n_partitions=5, n_probe=5)
        assert registry.get("m").index.n_partitions == 5
        profile, history = user_request()
        assert len(registry.recommend("m", profile, 5, history=history)) == 5
        with pytest.raises(ValueError):
            registry.build_index("m", CATALOG, backend="faiss")

    def test_build_index_clusters_once_for_explicit_ivf_count(self, model,
                                                              monkeypatch):
        """An explicit IVF partition count must flow into the snapshot build —
        not cluster at the default count and re-cluster at the requested one."""
        import repro.retrieval.index as index_module

        calls = []
        real_kmeans = index_module._lloyd_kmeans

        def counting_kmeans(points, k, iterations, seed, block_size):
            calls.append(k)
            return real_kmeans(points, k, iterations, seed, block_size)

        monkeypatch.setattr(index_module, "_lloyd_kmeans", counting_kmeans)
        registry = ModelRegistry()
        registry.register("m", model)
        registry.build_index("m", CATALOG, backend="ivf", n_partitions=6)
        assert calls == [6]

    def test_save_index_without_index_raises(self, model, tmp_path):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError):
            registry.save_index("m", tmp_path / "items.npz")

    def test_load_index_rejects_dim_mismatch(self, model, tmp_path):
        other = SeqFM(SeqFMConfig(static_vocab_size=60, dynamic_vocab_size=51,
                                  max_seq_len=6, embed_dim=8, seed=0))
        path = ItemIndex.from_model(other, CATALOG).save(tmp_path / "other.npz")
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError, match="embedding dim"):
            registry.load_index("m", path)

    def test_hot_reload_drops_stale_index_with_warning(self, model, tmp_path):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.save("m", tmp_path / "v1.npz")
        registry.build_index("m", CATALOG)
        assert registry.get("m").index is not None
        with pytest.warns(OrphanedIndexWarning, match="rebuild_index"):
            registry.load("m", tmp_path / "v1.npz")  # hot-swap, same arch
        assert registry.get("m").index is None
        assert registry.get("m").retriever is None

    def test_hot_reload_rebuild_index_keeps_retrieval(self, model, tmp_path):
        """The promotion path: rebuild_index=True re-snapshots the catalog
        from the swapped-in weights instead of orphaning the index."""
        import warnings

        registry = ModelRegistry()
        registry.register("m", model)
        registry.build_index("m", CATALOG, n_retrieve=NUM_ITEMS, seed=3)
        model.projection.data[...] += 0.25
        registry.save("m", tmp_path / "v2.npz")
        with warnings.catch_warnings():
            warnings.simplefilter("error", OrphanedIndexWarning)
            entry = registry.load("m", tmp_path / "v2.npz", rebuild_index=True)
        assert entry.index is not None and entry.retriever is not None
        assert entry.index_spec["seed"] == 3
        # the rebuilt snapshot reflects the *new* weights
        rebuilt = entry.index
        expected = ItemIndex.from_model(entry.model, CATALOG, seed=3)
        np.testing.assert_allclose(rebuilt.vectors, expected.vectors)


class TestRegistryOverwriteGuards:
    def test_register_over_existing_name_raises(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("m", model)

    def test_register_overwrite_replaces(self, model):
        registry = ModelRegistry()
        first = registry.register("m", model)
        second = registry.register("m", model, overwrite=True)
        assert registry.get("m") is second and second is not first

    def test_load_same_architecture_hot_swaps_without_flag(self, model, tmp_path):
        registry = ModelRegistry()
        entry = registry.register("m", model)
        registry.save("m", tmp_path / "v1.npz")
        model.projection.data[...] += 0.25
        registry.save("m", tmp_path / "v2.npz")
        reloaded = registry.load("m", tmp_path / "v2.npz")
        assert reloaded is entry  # same holder, weights swapped in place

    def test_load_different_architecture_requires_overwrite(self, model, tmp_path):
        from repro.core.serialization import save_seqfm

        other = SeqFM(SeqFMConfig(static_vocab_size=30, dynamic_vocab_size=20,
                                  max_seq_len=4, embed_dim=8, seed=0))
        path = tmp_path / "other.npz"
        save_seqfm(other, path)
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError, match="different architecture"):
            registry.load("m", path)
        replaced = registry.load("m", path, overwrite=True)
        assert replaced.model.config == other.config


# --------------------------------------------------------------------------- #
# Service layer: recommend head + summaries
# --------------------------------------------------------------------------- #
class TestRecommendService:
    def make_registry(self, model, cache_capacity=4096):
        registry = ModelRegistry(cache_capacity=cache_capacity)
        registry.register("m", model)
        registry.build_index("m", CATALOG, n_retrieve=NUM_ITEMS)
        return registry

    def payloads(self, count=3):
        result = []
        for user in range(count):
            profile, history = user_request(user=user)
            result.append({"static_indices": [int(x) for x in profile],
                           "history": history, "user_id": user, "k": 4})
        return result

    def test_recommend_batch_payload(self, model, engine):
        registry = self.make_registry(model)
        response = recommend_batch(registry, "m", self.payloads())
        assert response["head"] == "recommend"
        assert len(response["results"]) == 3
        assert response["stats"]["catalog_size"] == NUM_ITEMS
        assert response["stats"]["items_recommended"] == 12
        assert "cache_evictions" in response["stats"]
        profile, history = user_request(user=0)
        brute_ids, _ = engine.rank_topk(profile, CATALOG, 4, history)
        assert response["results"][0]["candidates"] == [int(i) for i in brute_ids]

    def test_predict_batch_dispatches_recommend_head(self, model):
        from repro.serving import predict_batch

        registry = self.make_registry(model)
        response = predict_batch(registry, "m", self.payloads(), head="recommend")
        assert response["head"] == "recommend" and len(response["results"]) == 3

    def test_recommend_batch_rejects_empty(self, model):
        registry = self.make_registry(model)
        with pytest.raises(ValueError):
            recommend_batch(registry, "m", [])

    def test_serve_jsonl_recommend_head(self, model):
        registry = self.make_registry(model)
        lines = [json.dumps(self.payloads(1)[0]),
                 json.dumps(self.payloads(2)),
                 json.dumps({"history": [1, 2]})]  # missing static_indices
        output = io.StringIO()
        summary = serve_jsonl(registry, "m", io.StringIO("\n".join(lines) + "\n"),
                              output, head="recommend", k=4)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert summary.rows == 4 + 8 and summary.errors == 1 and summary.lines == 3
        assert len(responses[0]["candidates"]) == 4
        assert len(responses[1]["results"]) == 2
        assert "error" in responses[2]

    def test_serve_jsonl_recommend_without_index_errors_cleanly(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with pytest.raises(ValueError, match="no item index"):
            serve_jsonl(registry, "m", io.StringIO(""), io.StringIO(),
                        head="recommend")

    def test_eviction_count_surfaces_in_stats(self, model):
        """Satellite: CacheStats evictions must reach the response stats."""
        registry = self.make_registry(model, cache_capacity=1)
        response = recommend_batch(registry, "m", self.payloads(3))
        assert response["stats"]["cache_evictions"] >= 2
        assert registry.get("m").sequence_store.stats.evictions >= 2


# --------------------------------------------------------------------------- #
# CLI subcommands
# --------------------------------------------------------------------------- #
class TestRetrievalCli:
    @pytest.fixture
    def checkpoint(self, model, tmp_path):
        from repro.core.serialization import save_seqfm

        path = tmp_path / "model.npz"
        save_seqfm(model, path)
        return path

    def test_build_index_item_range(self, checkpoint, tmp_path, capsys):
        from repro.experiments.cli import main

        output = tmp_path / "items.npz"
        code = main(["build-index", "--checkpoint", str(checkpoint),
                     "--item-range", str(NUM_USERS), str(NUM_USERS + NUM_ITEMS),
                     "--output", str(output)])
        assert code == 0 and output.exists()
        assert f"{NUM_ITEMS} items" in capsys.readouterr().out
        assert ItemIndex.load(output).num_items == NUM_ITEMS

    def test_build_index_items_file(self, checkpoint, tmp_path, capsys):
        from repro.experiments.cli import main

        items = tmp_path / "items.json"
        items.write_text(json.dumps([int(i) for i in CATALOG[:20]]))
        output = tmp_path / "items.npz"
        code = main(["build-index", "--checkpoint", str(checkpoint),
                     "--items-file", str(items), "--output", str(output)])
        capsys.readouterr()
        assert code == 0
        assert ItemIndex.load(output).num_items == 20

    def test_build_index_rejects_out_of_vocab(self, checkpoint, tmp_path, capsys):
        from repro.experiments.cli import main

        code = main(["build-index", "--checkpoint", str(checkpoint),
                     "--item-range", "0", "1000",
                     "--output", str(tmp_path / "items.npz")])
        capsys.readouterr()
        assert code == 2

    def test_recommend_command_end_to_end(self, model, checkpoint, tmp_path, capsys):
        from repro.experiments.cli import main

        index_path = tmp_path / "items.npz"
        assert main(["build-index", "--checkpoint", str(checkpoint),
                     "--item-range", str(NUM_USERS), str(NUM_USERS + NUM_ITEMS),
                     "--output", str(index_path)]) == 0
        profile, history = user_request(user=2)
        requests = tmp_path / "users.json"
        requests.write_text(json.dumps([
            {"static_indices": [int(x) for x in profile], "history": history,
             "user_id": 2}
        ]))
        out_path = tmp_path / "recs.json"
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--index", str(index_path), "--requests", str(requests),
                     "--k", "5", "--n-retrieve", str(NUM_ITEMS),
                     "--output", str(out_path)])
        printed = capsys.readouterr().out
        assert code == 0 and "recommended 5 items" in printed
        payload = json.loads(out_path.read_text())
        engine = InferenceEngine(model)
        brute_ids, _ = engine.rank_topk(profile, CATALOG, 5, history)
        assert payload["results"][0]["candidates"] == [int(i) for i in brute_ids]

    def test_recommend_requires_index_option(self, checkpoint, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["recommend", "--checkpoint", str(checkpoint),
                  "--requests", str(tmp_path / "r.json")])

    def test_serve_index_flags_require_index(self, checkpoint, capsys):
        from repro.experiments.cli import run_serving

        code = run_serving("serve", ["--checkpoint", str(checkpoint),
                                     "--partitions", "8", "--n-probe", "2"])
        captured = capsys.readouterr()
        assert code == 2
        assert "require --index" in captured.err

    def test_build_index_exact_backend_accepts_partition_count(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        registry.build_index("m", CATALOG, backend="exact", n_partitions=6,
                             n_retrieve=NUM_ITEMS)
        assert registry.get("m").index.n_partitions == 6
        profile, history = user_request()
        assert len(registry.recommend("m", profile, 4, history=history)) == 4

    def test_ivf_options_rejected_on_exact_backend(self, checkpoint, tmp_path,
                                                   capsys):
        from repro.experiments.cli import main

        index_path = tmp_path / "items.npz"
        assert main(["build-index", "--checkpoint", str(checkpoint),
                     "--item-range", str(NUM_USERS), str(NUM_USERS + NUM_ITEMS),
                     "--output", str(index_path)]) == 0
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--index", str(index_path), "--partitions", "8",
                     "--requests", str(tmp_path / "r.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "--partitions" in captured.err and "ivf" in captured.err

    def test_recommend_ivf_backend(self, checkpoint, tmp_path, capsys):
        from repro.experiments.cli import main

        index_path = tmp_path / "items.npz"
        assert main(["build-index", "--checkpoint", str(checkpoint),
                     "--item-range", str(NUM_USERS), str(NUM_USERS + NUM_ITEMS),
                     "--output", str(index_path)]) == 0
        capsys.readouterr()  # drain the build-index output
        profile, history = user_request(user=1)
        requests = tmp_path / "users.json"
        requests.write_text(json.dumps([
            {"static_indices": [int(x) for x in profile], "history": history}
        ]))
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--index", str(index_path), "--requests", str(requests),
                     "--index-backend", "ivf", "--partitions", "5",
                     "--n-probe", "5", "--k", "3"])
        printed = capsys.readouterr().out
        assert code == 0
        assert len(json.loads(printed)["results"][0]["candidates"]) == 3
