"""The runtime lock sanitizer: unit contracts and the observed ⊆ static check.

The unit tests drive :class:`LockSanitizer` through explicitly named locks:
a deliberate inversion raises :class:`LockOrderViolation` online (with the
cycle spelled out), reentrant ``RLock`` use and same-identity siblings
record nothing, and consistent nesting never trips.  The integration tests
install the ``threading.Lock``/``RLock`` monkeypatch for real: repo-created
locks come back wrapped and named after their source identity, and a
durable-store workload's observed acquisition edges all appear in the
static graph.  The final, env-gated test is the ``make sanitize``
cross-validation over the whole instrumented session.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.analysis import static_lock_edges
from repro.analysis.sanitizer import (
    LockOrderViolation,
    LockSanitizer,
    active_sanitizer,
    enabled_from_env,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------- #
# Unit contracts, via explicitly named locks
# --------------------------------------------------------------------------- #
class TestSanitizerUnit:
    def test_deliberate_inversion_raises_with_the_cycle(self):
        sanitizer = LockSanitizer()
        a = sanitizer.named_lock("A._lock")
        b = sanitizer.named_lock("B._lock")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderViolation) as excinfo:
            with b:
                with a:
                    pass
        message = str(excinfo.value)
        assert "A._lock" in message and "B._lock" in message
        assert "inversion" in message

    def test_violation_releases_the_lock_it_was_raised_from(self):
        sanitizer = LockSanitizer()
        a = sanitizer.named_lock("A._lock")
        b = sanitizer.named_lock("B._lock")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderViolation):
            with b:
                with a:
                    pass
        # Neither lock is wedged: the failed acquisition rolled back.
        assert not a._real.locked() and not b._real.locked()

    def test_longer_cycle_through_three_locks_is_caught(self):
        sanitizer = LockSanitizer()
        a = sanitizer.named_lock("A._lock")
        b = sanitizer.named_lock("B._lock")
        c = sanitizer.named_lock("C._lock")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockOrderViolation) as excinfo:
            with c:
                with a:
                    pass
        assert "C._lock" in str(excinfo.value)

    def test_consistent_order_never_trips(self):
        sanitizer = LockSanitizer()
        a = sanitizer.named_lock("A._lock")
        b = sanitizer.named_lock("B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitizer.observed_edges() == [("A._lock", "B._lock")]

    def test_reentrant_rlock_records_no_edge(self):
        sanitizer = LockSanitizer()
        lock = sanitizer.named_lock("R._lock", kind="RLock")
        with lock:
            with lock:
                pass
        assert sanitizer.observed_edges() == []

    def test_same_identity_siblings_record_no_edge(self):
        # Two shard locks share the source identity 'Shard._lock'; nesting
        # them is ordered by shard id at runtime, which a name-level graph
        # cannot (and must not pretend to) distinguish.
        sanitizer = LockSanitizer()
        first = sanitizer.named_lock("Shard._lock")
        second = sanitizer.named_lock("Shard._lock")
        with first:
            with second:
                pass
        assert sanitizer.observed_edges() == []

    def test_dump_writes_the_observed_graph_as_json(self, tmp_path):
        sanitizer = LockSanitizer()
        a = sanitizer.named_lock("A._lock")
        b = sanitizer.named_lock("B._lock")
        with a:
            with b:
                pass
        target = tmp_path / "results" / "graph.json"
        sanitizer.dump(target)
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["edges"] == [
            {"src": "A._lock", "dst": "B._lock", "count": 1}]


# --------------------------------------------------------------------------- #
# Monkeypatch installation against the real runtime
# --------------------------------------------------------------------------- #
class TestSanitizerInstall:
    def test_install_wraps_repo_created_locks_and_uninstall_restores(self):
        from repro.serving.cache import UserSequenceStore

        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            store = UserSequenceStore(max_seq_len=4)
            assert getattr(store._lock, "name", None) == \
                "UserSequenceStore._lock"
        finally:
            sanitizer.uninstall()
        assert threading.Lock is sanitizer._real_lock
        assert threading.RLock is sanitizer._real_rlock

    def test_locks_created_outside_the_repo_pass_through(self):
        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            # This file lives in tests/, not under a /repro/ path: the
            # factory must hand back a real, unwrapped lock.
            plain_lock = threading.Lock()
            assert not hasattr(plain_lock, "name")
        finally:
            sanitizer.uninstall()

    def test_durable_store_workload_edges_are_subset_of_static(
            self, tmp_path):
        from repro.serving.durability import DurableSequenceStore

        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            store = DurableSequenceStore(tmp_path / "state", max_seq_len=4,
                                         shards=2)
            store.record(1, [3, 4])
            store.record(2, [5])
            store.append_event(1, 6)
            store.checkpoint()
        finally:
            sanitizer.uninstall()
        observed = set(sanitizer.observed_edges())
        assert observed, "the workload should nest at least one lock pair"
        static = static_lock_edges([REPO_ROOT / "src"], root=REPO_ROOT)
        unexplained = observed - static
        assert not unexplained, (
            f"runtime acquisition edges missing from the static graph "
            f"(add the code path or a '# repro: lock-edge[...]' "
            f"declaration): {sorted(unexplained)}")


# --------------------------------------------------------------------------- #
# The `make sanitize` cross-validation: the whole instrumented session
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not enabled_from_env(),
                    reason="observed-graph cross-validation only runs under "
                           "REPRO_LOCK_SANITIZER=1 (make sanitize)")
def test_session_observed_edges_are_subset_of_static_graph():
    """Every acquisition order a real interleaving produced this session
    must already be in the static graph (derived or declared).  This file
    runs last in the ``make sanitize`` file list so the session's edge set
    is as full as it gets.
    """
    sanitizer = active_sanitizer()
    assert sanitizer is not None, "conftest should have installed the sanitizer"
    observed = set(sanitizer.observed_edges())
    static = static_lock_edges([REPO_ROOT / "src"], root=REPO_ROOT)
    unexplained = observed - static
    assert not unexplained, (
        f"runtime acquisition edges missing from the static graph: "
        f"{sorted(unexplained)}")
