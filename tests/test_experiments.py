"""Tests for the experiment harness: contexts, reporting, reference data and
the table/figure runners (exercised at a micro scale so they stay fast)."""

from __future__ import annotations

import pytest

from repro.experiments import reference
from repro.experiments.figure4_scalability import ScalabilityResult
from repro.experiments.registry import SCALES, build_context
from repro.experiments.reporting import ResultTable, compare_to_paper, format_table, relative_improvement
from repro.experiments.runners import build_model, evaluate_model, train_and_evaluate
from repro.experiments.table5_ablation import ABLATION_METRIC, ABLATION_VARIANTS


class TestRegistry:
    def test_scales_defined(self):
        assert {"quick", "small", "full"} <= set(SCALES)

    def test_build_context_quick(self):
        context = build_context("gowalla", scale="quick")
        assert context.task == "ranking"
        assert len(context.train_examples) > 0
        assert context.encoder.max_seq_len == SCALES["quick"].max_seq_len

    def test_build_context_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_context("movielens")

    def test_build_context_unknown_scale(self):
        with pytest.raises(KeyError):
            build_context("gowalla", scale="giant")

    def test_max_seq_len_override(self):
        context = build_context("gowalla", scale="quick", max_seq_len=5)
        assert context.encoder.max_seq_len == 5

    def test_task_assignment_per_dataset(self):
        assert build_context("trivago", scale="quick").task == "classification"
        assert build_context("beauty", scale="quick").task == "regression"

    def test_regression_examples_carry_ratings(self):
        context = build_context("beauty", scale="quick")
        labels = {example.label for example in context.train_examples}
        assert len(labels) > 1

    def test_seqfm_config_reflects_encoder(self):
        context = build_context("gowalla", scale="quick")
        config = context.seqfm_config()
        assert config.static_vocab_size == context.encoder.static_vocab_size
        assert config.dynamic_vocab_size == context.encoder.dynamic_vocab_size

    def test_trainer_config_overrides(self):
        context = build_context("gowalla", scale="quick")
        config = context.trainer_config(epochs=1)
        assert config.epochs == 1


class TestReporting:
    def test_result_table_roundtrip(self):
        table = ResultTable(title="demo", columns=["A", "B"])
        table.add_row("x", {"A": 1.0, "B": 2.0})
        table.add_row("y", {"A": 3.0, "B": 0.5})
        assert table.get("y", "A") == 3.0
        assert table.best_row("A") == "y"
        assert table.best_row("B", maximise=False) == "y"
        assert "demo" in str(table)

    def test_add_row_missing_column(self):
        table = ResultTable(title="demo", columns=["A", "B"])
        with pytest.raises(KeyError):
            table.add_row("x", {"A": 1.0})

    def test_best_row_empty_table(self):
        with pytest.raises(ValueError):
            ResultTable(title="demo", columns=["A"]).best_row("A")

    def test_format_table_contains_all_rows(self):
        table = ResultTable(title="demo", columns=["A"])
        table.add_row("model-1", {"A": 0.25})
        text = format_table(table)
        assert "model-1" in text and "0.250" in text

    def test_compare_to_paper(self):
        table = ResultTable(title="demo", columns=["AUC"])
        table.add_row("FM", {"AUC": 0.7})
        table.add_row("NotInPaper", {"AUC": 0.5})
        text = compare_to_paper(table, {"FM": {"AUC": 0.729}})
        assert "0.700 / 0.729" in text
        assert "NotInPaper" not in text

    def test_relative_improvement(self):
        assert relative_improvement(1.2, 1.0) == pytest.approx(0.2)
        assert relative_improvement(1.0, 0.0) == float("inf")


class TestReferenceNumbers:
    def test_seqfm_wins_every_ranking_metric_in_paper(self):
        for dataset, table in reference.TABLE2_RANKING.items():
            for metric in ("HR@10", "NDCG@10"):
                best = max(table, key=lambda model: table[model][metric])
                assert best == "SeqFM", f"{dataset}/{metric}"

    def test_seqfm_wins_classification_and_regression_in_paper(self):
        for table in reference.TABLE3_CLASSIFICATION.values():
            assert max(table, key=lambda m: table[m]["AUC"]) == "SeqFM"
            assert min(table, key=lambda m: table[m]["RMSE"]) == "SeqFM"
        for table in reference.TABLE4_REGRESSION.values():
            assert min(table, key=lambda m: table[m]["MAE"]) == "SeqFM"

    def test_ablation_default_is_best_on_most_datasets(self):
        # On the ranking/classification datasets higher is better and Default wins.
        for dataset in ("gowalla", "foursquare", "trivago", "taobao"):
            values = {variant: row[dataset] for variant, row in reference.TABLE5_ABLATION.items()}
            # "Remove CV" on trivago is the paper's single exception.
            best = max(values, key=values.get)
            assert best in ("Default", "Remove CV")

    def test_figure4_reference_is_increasing(self):
        times = [reference.FIGURE4_SCALABILITY[p] for p in sorted(reference.FIGURE4_SCALABILITY)]
        assert times == sorted(times)

    def test_table1_contains_six_datasets(self):
        assert len(reference.TABLE1_DATASETS) == 6


class TestRunners:
    @pytest.fixture(scope="class")
    def quick_context(self):
        return build_context("gowalla", scale="quick")

    def test_build_model_seqfm_and_baseline(self, quick_context):
        seqfm = build_model(quick_context, "SeqFM")
        fm = build_model(quick_context, "FM")
        assert seqfm.task == "ranking"
        assert fm.task == "ranking"

    def test_build_model_unknown(self, quick_context):
        with pytest.raises(KeyError):
            build_model(quick_context, "BERT4Rec")

    def test_evaluate_untrained_model(self, quick_context):
        model = build_model(quick_context, "FM")
        metrics = evaluate_model(quick_context, model, max_users=5)
        assert set(metrics) == {"HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20"}

    def test_train_and_evaluate_records_time(self, quick_context):
        config = quick_context.trainer_config(epochs=1)
        metrics = train_and_evaluate(quick_context, "FM", trainer_config=config, max_users=5)
        assert metrics["train_seconds"] > 0


class TestAblationAndScalabilityHelpers:
    def test_ablation_variants_cover_paper_rows(self):
        paper_rows = {"Default", "Remove SV", "Remove DV", "Remove CV", "Remove RC", "Remove LN"}
        assert paper_rows <= set(ABLATION_VARIANTS)

    def test_ablation_metric_per_task(self):
        assert ABLATION_METRIC == {"ranking": "HR@10", "classification": "AUC", "regression": "MAE"}

    def test_scalability_linear_fit(self):
        result = ScalabilityResult(dataset="demo",
                                   proportions=[0.2, 0.4, 0.6, 0.8, 1.0],
                                   train_seconds=[1.0, 2.1, 2.9, 4.2, 5.0],
                                   num_examples=[10, 20, 30, 40, 50])
        result.fit_line()
        assert result.linear_r_squared > 0.98

    def test_scalability_constant_times(self):
        result = ScalabilityResult(dataset="demo", proportions=[0.5, 1.0],
                                   train_seconds=[1.0, 1.0], num_examples=[5, 10])
        result.fit_line()
        assert result.linear_r_squared == 1.0
